"""AXI transaction types and an outstanding-transaction ID allocator.

The AXI protocol (Section 2.1 of the paper) carries asynchronous read
transactions identified by IDs, allowing a primary to keep several
transactions in flight. The simulator models transactions as lightweight
records; the interesting dynamics (outstanding limits, CDC costs, bus
occupancy) live in the components that exchange them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterator

from ..errors import SimulationError
from ..sim import StatSet

_txn_ids: Iterator[int] = count(1)


@dataclass(frozen=True)
class AXIReadRequest:
    """A CPU- or PL-originated read: the paper's ``{A, ID}`` tuple."""

    addr: int
    nbytes: int
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    source: str = "cpu"

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise SimulationError("AXI read must request at least one byte")
        if self.addr < 0:
            raise SimulationError("AXI read address must be non-negative")


@dataclass(frozen=True)
class AXIReadResponse:
    """The matching ``{ID, RD}`` response."""

    txn_id: int
    data: bytes

    @property
    def nbytes(self) -> int:
        return len(self.data)


def beats_for(nbytes: int, bus_bytes: int) -> int:
    """Number of bus beats to move ``nbytes`` over a ``bus_bytes``-wide bus."""
    if nbytes <= 0 or bus_bytes <= 0:
        raise SimulationError("beats_for requires positive sizes")
    return -(-nbytes // bus_bytes)


class AXILink:
    """One direction-agnostic hop of the PL<->DRAM AXI path.

    The Fetch Units previously charged a bare timeout per traversal; the
    link object keeps that exact cost (one simulator event per hop, so
    timing is bit-identical with faults off) while giving the fault layer
    a place to stall beats: an armed ``axi_stall`` event stretches one
    traversal by its ``duration_ns``, modelling a throttled interconnect
    or a timed-out handshake retry.
    """

    def __init__(self, sim, latency_ns: float, name: str = "axi"):
        if latency_ns < 0:
            raise SimulationError("AXI link latency must be >= 0")
        self.sim = sim
        self.latency_ns = latency_ns
        self.stats = StatSet(name)
        #: Optional :class:`repro.faults.FaultInjector` (None = no faults).
        self.faults = None

    def traverse(self, direction: str = "read"):
        """A process: one hop across the link."""
        delay = self.latency_ns
        if self.faults is not None:
            event = self.faults.draw("axi_stall", self.sim.now)
            if event is not None:
                delay += event.duration_ns
                self.stats.bump("stalls_" + direction)
                self.stats.bump("stall_ns", event.duration_ns)
        yield self.sim.timeout(delay)
        return None
