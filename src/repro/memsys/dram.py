"""A banked DRAM model with open-page policy and a shared data bus.

The model is *reservation based*: when a request arrives, its completion
time is computed immediately from the current bank and bus reservations,
those reservations are advanced, and the requesting process simply sleeps
until the computed completion. This costs O(1) simulation events per
request while still capturing the three effects the paper's evaluation
depends on:

* **row-buffer locality** — sequential streams mostly hit the open row and
  pay only CAS latency; random strides pay precharge + activate;
* **bank-level parallelism** — requests to different banks overlap their
  latencies, which is exactly what the MLP revision exploits with its 16
  outstanding transactions (Section 5.2);
* **data-bus occupancy** — every beat occupies the shared bus, so reading a
  whole 64-byte row to use 4 bytes of it costs 4x the bus time of reading
  one 16-byte beat. This asymmetry is the source of the RME's bandwidth
  win.

Address mapping interleaves consecutive row-buffer-sized blocks across
banks (bank bits above the column bits), the common layout for maximising
stream bandwidth.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import DRAMTimings
from ..errors import SimulationError
from ..sim import Simulator, StatSet
from ..sim.trace import emit, emit_span
from .memmap import PhysicalMemory


class _Bank:
    """Reservation state of one DRAM bank."""

    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: int = -1  #: -1 means no row open (after reset)
        self.ready_at: float = 0.0


class DRAM:
    """The main-memory device shared by the direct route and the PL route."""

    def __init__(
        self,
        sim: Simulator,
        timings: DRAMTimings,
        memory: PhysicalMemory,
        name: str = "dram",
    ):
        timings.validate()
        self.sim = sim
        self.t = timings
        self.memory = memory
        self.name = name
        self.stats = StatSet(name)
        self._banks: List[_Bank] = [_Bank() for _ in range(timings.n_banks)]
        self._bus_free_at: float = 0.0
        #: Fast-forward safety tripwire: the replay commits the epoch's
        #: whole reservation schedule at activation time on the premise
        #: that no other traffic interleaves with it. Any access arriving
        #: before this timestamp would have reordered against the
        #: fast-forwarded requests — raise instead of diverging silently.
        self.guard_until: float = 0.0
        #: Optional :class:`repro.faults.FaultInjector` (None = no faults;
        #: the check costs one attribute load, like disabled tracing).
        self.faults = None

    # -- address mapping -----------------------------------------------------
    def locate(self, addr: int) -> Tuple[int, int]:
        """Map a byte address to ``(bank_index, row_id)``."""
        block = addr // self.t.row_buffer_bytes
        return block % self.t.n_banks, block // self.t.n_banks

    def beats_for(self, addr: int, nbytes: int) -> int:
        """Bus beats needed to transfer ``[addr, addr+nbytes)``."""
        if nbytes <= 0:
            raise SimulationError("DRAM access must transfer at least one byte")
        first = addr // self.t.bus_bytes
        last = (addr + nbytes - 1) // self.t.bus_bytes
        return last - first + 1

    # -- the access process ---------------------------------------------------
    def access(self, addr: int, nbytes: int, source: str = "cpu"):
        """Read ``nbytes`` at ``addr``; a process returning the data bytes.

        ``source`` tags the statistics ("cpu", "prefetch", "rme", ...).
        """
        if self.sim.now < self.guard_until:
            raise SimulationError(
                f"DRAM access from {source!r} at t={self.sim.now} during a "
                f"fast-forwarded epoch (guarded until t={self.guard_until}); "
                "the fast path's no-cross-traffic premise was violated"
            )
        t = self.t
        bank_idx, row_id = self.locate(addr)
        bank = self._banks[bank_idx]
        beats = self.beats_for(addr, nbytes)

        arrival = self.sim.now
        arrive = self.sim.now + t.t_controller
        start = max(arrive, bank.ready_at)
        if bank.open_row == row_id:
            first_beat_ready = start + t.t_cas
            command_occupancy = t.t_ccd
            row_state = "hit"
            self.stats.bump("row_hits")
        elif bank.open_row < 0:
            first_beat_ready = start + t.t_rcd + t.t_cas
            command_occupancy = t.t_rcd + t.t_ccd
            row_state = "empty"
            self.stats.bump("row_empty")
        else:
            first_beat_ready = start + t.t_rp + t.t_rcd + t.t_cas
            command_occupancy = t.t_rp + t.t_rcd + t.t_ccd
            row_state = "miss"
            self.stats.bump("row_misses")
        bank.open_row = row_id

        transfer_start = max(first_beat_ready, self._bus_free_at)
        transfer_end = transfer_start + beats * t.t_beat
        self._bus_free_at = transfer_end
        # Column commands pipeline within an open row: the bank frees after
        # t_ccd (plus activate/precharge when the row changed), not after the
        # whole data transfer — but never before it can stream its beats.
        bank.ready_at = max(start + command_occupancy, transfer_end - beats * t.t_beat)

        self.stats.bump("requests_" + source)
        self.stats.bump("bytes_" + source, nbytes)
        self.stats.bump("beats", beats)
        self.stats.bump("service_ns", transfer_end - self.sim.now)
        self.stats.observe("service_latency_ns", transfer_end - self.sim.now)

        yield self.sim.timeout(transfer_end - self.sim.now)
        emit_span(self.sim, self.name, "access", arrival,
                  bank=bank_idx, row=row_state, beats=beats, source=source)
        data = self.memory.read(addr, nbytes)
        if self.faults is not None:
            data = self._apply_ecc(data, addr)
        return data

    def _apply_ecc(self, data: bytes, addr: int):
        """SECDED word model for an armed ``dram_bitflip`` event.

        One flipped bit per ECC word is corrected in flight (counter
        only), two are detected but uncorrectable (the access returns
        :data:`~repro.faults.POISONED` instead of data — the caller's
        retry re-reads the intact array), three or more escape silently:
        the returned payload really is corrupt.
        """
        from ..faults import POISONED

        event = self.faults.draw("dram_bitflip", self.sim.now)
        if event is None:
            return data
        if event.severity == 1:
            self.stats.bump("ecc_corrected")
            return data
        if event.severity == 2:
            self.stats.bump("ecc_uncorrectable")
            emit(self.sim, self.name, "ecc_poison", addr=addr)
            return POISONED
        self.stats.bump("ecc_escaped")
        return self.faults.corrupt_bytes(data, n_flips=event.severity)

    def write(self, addr: int, nbytes: int, source: str = "writeback"):
        """Write ``nbytes`` at ``addr``; a process ending when the data is
        accepted. Same bank/row/bus dynamics as reads (write-back traffic
        from dirty evictions competes with everything else)."""
        if self.sim.now < self.guard_until:
            raise SimulationError(
                f"DRAM write from {source!r} at t={self.sim.now} during a "
                f"fast-forwarded epoch (guarded until t={self.guard_until}); "
                "the fast path's no-cross-traffic premise was violated"
            )
        t = self.t
        bank_idx, row_id = self.locate(addr)
        bank = self._banks[bank_idx]
        beats = self.beats_for(addr, nbytes)

        arrive = self.sim.now + t.t_controller
        start = max(arrive, bank.ready_at)
        if bank.open_row == row_id:
            ready = start + t.t_cas
            occupancy = t.t_ccd
            self.stats.bump("row_hits")
        elif bank.open_row < 0:
            ready = start + t.t_rcd + t.t_cas
            occupancy = t.t_rcd + t.t_ccd
            self.stats.bump("row_empty")
        else:
            ready = start + t.t_rp + t.t_rcd + t.t_cas
            occupancy = t.t_rp + t.t_rcd + t.t_ccd
            self.stats.bump("row_misses")
        bank.open_row = row_id

        transfer_start = max(ready, self._bus_free_at)
        transfer_end = transfer_start + beats * t.t_beat
        self._bus_free_at = transfer_end
        bank.ready_at = max(start + occupancy, transfer_end - beats * t.t_beat)

        self.stats.bump("writes_" + source)
        self.stats.bump("bytes_written", nbytes)
        self.stats.bump("beats", beats)
        # The writer only waits for the command to be accepted; the data
        # drains from the controller's write queue asynchronously.
        yield self.sim.timeout(max(0.0, start - self.sim.now))
        return None

    # -- introspection --------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        hits = self.stats.count("row_hits")
        total = hits + self.stats.count("row_misses") + self.stats.count("row_empty")
        return hits / total if total else 0.0

    def reset_state(self) -> None:
        """Close all rows and clear reservations (not the statistics)."""
        for bank in self._banks:
            bank.open_row = -1
            bank.ready_at = 0.0
        self._bus_free_at = 0.0
        self.guard_until = 0.0
