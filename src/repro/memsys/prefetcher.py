"""A stride-detecting stream prefetcher, modelled after the Cortex-A53 L1
prefetcher the paper credits for the low L1 miss count of packed accesses
("since the column is accessed sequentially, the L1 pre-fetcher can
drastically reduce the L1 misses", Section 6.3).

The prefetcher watches the stream of demand line addresses, learns a
constant stride (in line units), and once confident proposes up to
``degree`` line addresses ahead of the current access. The hierarchy is
responsible for actually issuing the prefetch fills (and for skipping
lines that are already resident or in flight).
"""

from __future__ import annotations

from typing import List

from ..sim import StatSet


class StreamPrefetcher:
    """Single-stream stride prefetcher.

    A real A53 tracks a handful of streams; the workloads in the paper's
    benchmark are single sequential scans, so one stream table entry is
    sufficient and keeps the model transparent.
    """

    #: consecutive same-stride accesses required before prefetching starts.
    CONFIDENCE_THRESHOLD = 2

    def __init__(
        self,
        line_size: int,
        degree: int = 4,
        max_stride_lines: int = 1,
        name: str = "prefetcher",
    ):
        self.line_size = line_size
        self.degree = degree
        #: Largest stride (in lines) the unit can follow. The A53 prefetcher
        #: only follows consecutive line fetches (stride 1); scans whose rows
        #: span multiple lines defeat it — see Figure 10's discussion.
        self.max_stride_lines = max_stride_lines
        self.stats = StatSet(name)
        self._last_line: int = -1
        self._stride: int = 0  #: in bytes, always a multiple of line_size
        self._confidence: int = 0

    def observe(self, line_base: int) -> List[int]:
        """Feed one demand access; returns line addresses worth prefetching.

        Repeated accesses to the same line (multiple elements per line) are
        ignored rather than resetting the stream.
        """
        if self.degree == 0:
            return []
        if line_base == self._last_line:
            return self._targets(line_base) if self._confident else []

        if self._last_line >= 0:
            stride = line_base - self._last_line
            if stride == self._stride:
                self._confidence += 1
            else:
                self._stride = stride
                self._confidence = 1
        self._last_line = line_base

        if not self._confident:
            return []
        targets = self._targets(line_base)
        self.stats.bump("streams_followed")
        return targets

    @property
    def _confident(self) -> bool:
        if self._stride == 0 or self._confidence < self.CONFIDENCE_THRESHOLD:
            return False
        return abs(self._stride) <= self.max_stride_lines * self.line_size

    def _targets(self, line_base: int) -> List[int]:
        stride = self._stride
        return [line_base + stride * k for k in range(1, self.degree + 1)]

    def reset(self) -> None:
        """Forget the tracked stream (between queries)."""
        self._last_line = -1
        self._stride = 0
        self._confidence = 0
