"""Clock domains and the cost of crossing between them.

The paper constrains the PL to 100 MHz and notes (Section 6.3, "Long-Term
Potential and Impact") that routing transactions through the PL "forces
transactions to cross through a lower-frequency domain", adding a
clock-domain-crossing (CDC) penalty to every transaction — the reason
single-transaction latency through the RME is *worse* than the direct
route even though the end-to-end query is faster.

:class:`ClockDomain` provides cycle arithmetic plus edge alignment: events
inside the PL can only happen on PL clock edges, so a request arriving
mid-cycle waits for the next edge.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class ClockDomain:
    """A clock with frequency-derived cycle helpers."""

    def __init__(self, name: str, freq_mhz: float):
        if freq_mhz <= 0:
            raise ConfigurationError(f"clock {name!r}: frequency must be positive")
        self.name = name
        self.freq_mhz = freq_mhz
        self.cycle_ns = 1000.0 / freq_mhz

    def cycles(self, n: float) -> float:
        """Duration of ``n`` cycles in nanoseconds."""
        return n * self.cycle_ns

    def align_delay(self, now: float) -> float:
        """Delay from ``now`` until the next clock edge (0 if on an edge)."""
        remainder = now % self.cycle_ns
        if remainder < 1e-9:
            return 0.0
        return self.cycle_ns - remainder

    def crossing_delay(self, now: float, sync_cycles: float) -> float:
        """Total delay for a signal entering this domain at time ``now``.

        The signal first waits for the next edge of this clock, then spends
        ``sync_cycles`` cycles in the synchroniser flip-flops.
        """
        return self.align_delay(now) + self.cycles(sync_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockDomain({self.name} @ {self.freq_mhz:g} MHz)"
