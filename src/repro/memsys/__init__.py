"""The memory-system substrate: DRAM, caches, interconnect, CPU front-end.

This package models the platform half of the paper's Figure 3 — everything
the Relational Memory Engine plugs into:

* :mod:`repro.memsys.memmap` — the physical address space, with byte-exact
  backing storage for every mapped region.
* :mod:`repro.memsys.dram` — a banked DRAM with open-page policy and a
  shared data bus, the source of both the direct route's bandwidth and the
  bank-level parallelism MLP exploits.
* :mod:`repro.memsys.cache` / :mod:`repro.memsys.prefetcher` — the
  Cortex-A53-like L1/L2 hierarchy with a stream prefetcher.
* :mod:`repro.memsys.hierarchy` — the CPU-side load path, routing misses to
  DRAM or to the programmable logic depending on the address region.
* :mod:`repro.memsys.axi` / :mod:`repro.memsys.cdc` — AXI transactions and
  the clock-domain-crossing cost of entering the 100 MHz PL domain.
* :mod:`repro.memsys.cpu` — a scan-loop driver that replays a query's data
  access pattern against the hierarchy.
"""

from .axi import AXIReadRequest, AXIReadResponse
from .cache import Cache
from .cdc import ClockDomain
from .cpu import ScanDriver, ScanSegment
from .dram import DRAM
from .hierarchy import MemoryHierarchy
from .memmap import MemoryMap, PhysicalMemory, Region
from .prefetcher import StreamPrefetcher

__all__ = [
    "AXIReadRequest",
    "AXIReadResponse",
    "Cache",
    "ClockDomain",
    "DRAM",
    "MemoryHierarchy",
    "MemoryMap",
    "PhysicalMemory",
    "Region",
    "ScanDriver",
    "ScanSegment",
    "StreamPrefetcher",
]
