"""The CPU-side load path: L1 -> L2 -> (DRAM | programmable logic).

:class:`MemoryHierarchy` strings the cache levels together, merges
concurrent requests for the same line (MSHR semantics), issues prefetches
suggested by the stream prefetcher, and routes line fills to the backend
device that owns the address — the DRAM for ordinary regions, the RME's
Trapper for ephemeral-variable regions.

Statistics mirror the counters of the paper's Figure 7: requests and
misses per level, split into demand and prefetch traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..config import PlatformConfig
from ..errors import MemoryMapError
from ..sim import Event, Resource, Simulator, StatSet
from ..sim.trace import emit_span
from .cache import Cache
from .memmap import Region
from .prefetcher import StreamPrefetcher


#: Sentinel a backend may return instead of data: the request was not
#: served (e.g. a prefetch into a reorganization-buffer window that is not
#: current). The line is NOT filled; merged demand requests retry.
DECLINED = object()


class LineBackend:
    """Protocol for devices that can fill a cache line.

    ``read_line(line_base)`` must be a simulation process (generator); its
    completion marks the moment the line's data reaches the cache. A
    backend may return :data:`DECLINED` to refuse the fill.
    """

    def read_line(self, line_base: int, source: str = "cpu"):
        raise NotImplementedError


class DRAMBackend(LineBackend):
    """Adapter exposing the DRAM model as a line-fill backend."""

    def __init__(self, dram):
        self.dram = dram

    def read_line(self, line_base: int, source: str = "cpu"):
        line = self.dram.memory.memmap.find(line_base)  # validates mapping
        del line
        if self.dram.faults is None:
            return self.dram.access(line_base, 64, source=source)
        return self._read_with_ecc(line_base, source)

    def _read_with_ecc(self, line_base: int, source: str):
        """Retry detected-uncorrectable reads; escalate when they persist.

        A re-read usually succeeds (the flip was in flight, the array is
        intact); a persistently poisoned line raises
        :class:`~repro.errors.UncorrectableMemoryError` up the CPU load
        chain, where the query layer degrades to another access path.
        """
        from ..errors import UncorrectableMemoryError
        from ..faults import POISONED

        policy = self.dram.faults.recovery
        attempt = 0
        while True:
            data = yield from self.dram.access(line_base, 64, source=source)
            if data is not POISONED:
                return data
            if not policy.enabled or attempt >= policy.max_retries:
                self.dram.faults.stats.bump("dram_unrecoverable")
                raise UncorrectableMemoryError(
                    f"uncorrectable DRAM error at {line_base:#x} after "
                    f"{attempt} retries",
                    addr=line_base,
                )
            attempt += 1
            self.dram.faults.stats.bump("dram_read_retries")
            yield self.dram.sim.timeout(policy.retry_backoff_ns * attempt)


class MemoryHierarchy:
    """L1 + L2 + routed backends, as seen by one CPU core.

    The Cortex-A53 cluster shares its L2 across cores: pass an existing
    cache as ``shared_l2`` (and optionally a shared backend list) to model
    multiple cores — each core keeps a private L1, stream prefetcher and
    MSHRs, while L2 capacity and contents are common, so one core's
    streaming evicts another core's working set (the cache-pollution
    interference the RME's packed lines reduce).
    """

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformConfig,
        shared_l2: "Cache" = None,
        shared_backends: "List[Tuple[Region, LineBackend]]" = None,
        core_id: int = 0,
    ):
        platform.validate()
        self.sim = sim
        self.platform = platform
        self.core_id = core_id
        self.line_size = platform.cache_line
        self.l1 = Cache(f"l1.{core_id}" if core_id else "l1", platform.l1)
        self.l2 = shared_l2 if shared_l2 is not None else Cache("l2", platform.l2)
        self.stats = StatSet(f"cpu{core_id}")
        self.prefetcher = StreamPrefetcher(
            self.line_size,
            platform.prefetch_degree,
            platform.max_prefetch_stride_lines,
        )
        self.mshrs = Resource(sim, platform.cpu_mshrs, f"mshrs.{core_id}")
        self._backends: List[Tuple[Region, LineBackend]] = (
            shared_backends if shared_backends is not None else []
        )
        self._inflight: Dict[int, Event] = {}
        # Fixed per-access latencies, pre-resolved: load_line runs once per
        # scanned cache line and the platform config is frozen.
        self._l1_hit_ns = platform.l1_hit_ns
        self._l1_miss_issue_ns = platform.l1_miss_issue_ns
        self._l2_hit_ns = platform.l2_hit_ns

    # -- routing ---------------------------------------------------------------
    def add_backend(self, region: Region, backend: LineBackend) -> None:
        self._backends.append((region, backend))

    def route(self, addr: int) -> LineBackend:
        for region, backend in self._backends:
            if region.contains(addr):
                return backend
        # Fault triage needs to know how far off the address is, not just
        # that it missed: name the nearest mapped region and its bounds.
        nearest = min(
            (r for r, _b in self._backends),
            key=lambda r: min(abs(addr - r.base), abs(addr - (r.limit - 1))),
            default=None,
        )
        if nearest is None:
            raise MemoryMapError(
                f"no backend serves address {addr:#x} (no regions are mapped)"
            )
        raise MemoryMapError(
            f"no backend serves address {addr:#x}; nearest mapped region is "
            f"{nearest.name!r} [{nearest.base:#x}, {nearest.limit:#x})"
        )

    def _region_of(self, addr: int) -> Optional[Region]:
        for region, _backend in self._backends:
            if region.contains(addr):
                return region
        return None

    # -- the load path -----------------------------------------------------------
    def line_base(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def load(self, addr: int, nbytes: int = 1):
        """Demand-load ``[addr, addr+nbytes)``; a process touching each line."""
        first = self.line_base(addr)
        last = self.line_base(addr + nbytes - 1)
        line = first
        while line <= last:
            yield from self.load_line(line, demand=True)
            line += self.line_size
        return None

    def load_line(self, line_base: int, demand: bool = True):
        """Bring one line to L1; a process that ends when the data is usable.

        Demand accesses feed the prefetcher and always pay the L1 hit
        latency on top of any miss handling; prefetch accesses are silent
        background fills.
        """
        cfg = self.platform
        sim = self.sim
        if demand:
            targets = self.prefetcher.observe(line_base)
            if targets:
                self._issue_prefetches(targets, line_base)

        if self.l1.lookup(line_base, demand=demand):
            if demand:
                yield sim.timeout(self._l1_hit_ns)
            return None

        if demand:
            # In-order miss handling: the core burns issue/replay slots for
            # every demand access that does not hit L1.
            yield sim.timeout(self._l1_miss_issue_ns)

        while True:
            pending = self._inflight.get(line_base)
            if pending is None:
                break
            # The line is already on its way (typically a prefetch racing
            # just ahead of the demand stream): wait for that fill instead
            # of issuing a duplicate request.
            self.l1.stats.bump("misses_merged")
            filled = yield pending
            if filled or not demand:
                # Prefetches give up if the fill they merged with declined.
                if demand:
                    yield self.sim.timeout(cfg.l1_hit_ns)
                return None
            if self.l1.contains(line_base):
                yield self.sim.timeout(cfg.l1_hit_ns)
                return None
            # The merged request was declined (windowed RME): retry as our
            # own request so a demand can force the window switch.

        arrival = self._inflight[line_base] = self.sim.event()
        filled = True
        yield self.mshrs.acquire()
        try:
            if self.l1.lookup(line_base, demand=False):
                # Filled while we waited for an MSHR slot.
                pass
            elif self.l2.lookup(line_base, demand=demand):
                yield self.sim.timeout(cfg.l2_hit_ns)
                self._fill_l1(line_base)
            else:
                backend = self.route(line_base)
                fill_start = self.sim.now
                dest = "dram" if isinstance(backend, DRAMBackend) else "pl"
                yield self.sim.timeout(cfg.l1_hit_ns + cfg.l2_hit_ns)
                source = "cpu" if demand else "prefetch"
                result = yield from backend.read_line(line_base, source=source)
                self.stats.observe("fill_ns", self.sim.now - fill_start)
                emit_span(self.sim, f"cpu{self.core_id}", "line_fill",
                          fill_start, dest=dest, source=source)
                if result is DECLINED:
                    filled = False
                    self.l1.stats.bump("fills_declined")
                else:
                    self._fill_l2(line_base)
                    self._fill_l1(line_base)
        finally:
            self.mshrs.release()
            del self._inflight[line_base]
            arrival.succeed(filled)
        if demand:
            yield self.sim.timeout(cfg.l1_hit_ns)
        return None

    def store(self, addr: int, nbytes: int = 1):
        """Demand-write ``[addr, addr+nbytes)``; a process.

        Write-allocate / write-back, like the A53: the line is brought in
        (read-for-ownership) if absent, then dirtied in L1. Ephemeral
        regions are read-only per the paper's Section 4 ("we treat all
        ephemeral variables as read-only columns"); storing to one raises.
        """
        region = self._region_of(addr)
        if region is not None and region.kind == "pl":
            raise MemoryMapError(
                f"store to {addr:#x}: ephemeral variables are read-only; "
                "updates go to the row-oriented base data"
            )
        first = self.line_base(addr)
        last = self.line_base(addr + max(1, nbytes) - 1)
        line = first
        while line <= last:
            yield from self.load_line(line, demand=True)
            self.l1.touch_write(line)
            self.l1.stats.bump("stores")
            line += self.line_size
        return None

    # -- fills and prefetch ---------------------------------------------------------
    def _fill_l1(self, line_base: int) -> None:
        victim = self.l1.fill(line_base)
        if victim is not None:
            # An L1 victim falls into L2, carrying its dirty bit; that fill
            # may in turn push a dirty L2 victim out to DRAM.
            self._fill_l2(victim, dirty=self.l1.last_victim_dirty)

    def _fill_l2(self, line_base: int, dirty: bool = False) -> None:
        victim = self.l2.fill(line_base, dirty=dirty)
        if victim is not None and self.l2.last_victim_dirty:
            self._issue_writeback(victim)

    def _issue_writeback(self, victim_line: int) -> None:
        """Dirty L2 victims drain to DRAM as background write traffic."""
        try:
            backend = self.route(victim_line)
        except MemoryMapError:
            return
        dram = getattr(backend, "dram", None)
        if dram is None:
            return
        self.sim.process(
            dram.write(victim_line, self.line_size, source="writeback"),
            name="writeback",
        )

    def _issue_prefetches(self, targets: Iterable[int], trigger: int) -> None:
        # Prefetches never cross a region boundary (hardware prefetchers
        # stop at page boundaries) — crossing from one ephemeral alias into
        # a neighbouring one would read a projection that is not active.
        home = self._region_of(trigger)
        for target in targets:
            if target < 0 or target in self._inflight:
                continue
            if self.l1.contains(target):
                continue
            if home is None or not home.contains(target):
                continue
            self.prefetcher.stats.bump("issued")
            self.sim.process(self.load_line(target, demand=False), name="prefetch")

    # -- bookkeeping ------------------------------------------------------------------
    def flush(self) -> None:
        """Empty both cache levels and the stream table (cold caches)."""
        self.l1.flush()
        self.l2.flush()
        self.prefetcher.reset()

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Figure-7-style snapshot: per-level requests and misses."""
        return {
            "l1": {
                "requests": self.l1.stats.count("requests_demand"),
                "misses": self.l1.stats.count("misses_demand"),
            },
            "l2": {
                "requests": self.l2.stats.count("requests"),
                "misses": self.l2.stats.count("misses"),
            },
        }

    def reset_stats(self) -> None:
        self.l1.stats.reset()
        self.l2.stats.reset()
        self.prefetcher.stats.reset()
        self.stats.reset()
