"""A set-associative write-back cache with true-LRU replacement.

The cache is a *functional* structure: it tracks which lines are present
and in what recency order, and counts requests/misses/evictions. Timing is
owned by :class:`repro.memsys.hierarchy.MemoryHierarchy`, which consults
the caches and charges the appropriate hit/miss latencies.

Lines are identified by their line address (byte address with the offset
bits already stripped: ``addr // line_size``-style, we keep byte-aligned
line base addresses for readability).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..config import CacheGeometry
from ..errors import ConfigurationError
from ..sim import StatSet


class Cache:
    """One cache level (used for both the 32 KB L1-D and the 1 MB L2)."""

    def __init__(self, name: str, geometry: CacheGeometry):
        geometry.validate()
        self.name = name
        self.geometry = geometry
        self.line_size = geometry.line_size
        self.n_sets = geometry.n_sets
        self.assoc = geometry.assoc
        self.stats = StatSet(name)
        #: Whether the victim of the most recent fill needed a write-back.
        self.last_victim_dirty = False
        # Each set is an OrderedDict {line_base: dirty}; LRU at the front.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        # Lookup-path counters, pre-created once: every scanned element
        # probes the L1, so lookup() must be straight-line field updates
        # (StatSet.reset() mutates counters in place, so these references
        # stay valid across experiment resets).
        self._c_requests = self.stats.counter("requests")
        self._c_requests_demand = self.stats.counter("requests_demand")
        self._c_requests_prefetch = self.stats.counter("requests_prefetch")
        self._c_hits = self.stats.counter("hits")
        self._c_misses = self.stats.counter("misses")
        self._c_misses_demand = self.stats.counter("misses_demand")
        self._c_misses_prefetch = self.stats.counter("misses_prefetch")

    # -- address helpers -------------------------------------------------------
    def line_base(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def set_index(self, line_base: int) -> int:
        return (line_base // self.line_size) % self.n_sets

    def _set_for(self, line_base: int) -> "OrderedDict[int, bool]":
        if line_base % self.line_size:
            raise ConfigurationError(
                f"{self.name}: {line_base:#x} is not line-aligned"
            )
        index = self.set_index(line_base)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        return cache_set

    # -- operations -------------------------------------------------------------
    def lookup(self, line_base: int, *, demand: bool = True) -> bool:
        """Probe for a line; updates LRU on hit. Counts requests/misses."""
        cache_set = self._set_for(line_base)
        counter = self._c_requests
        counter.count += 1
        counter.total += 1.0
        counter = self._c_requests_demand if demand else self._c_requests_prefetch
        counter.count += 1
        counter.total += 1.0
        if line_base in cache_set:
            cache_set.move_to_end(line_base)
            counter = self._c_hits
            counter.count += 1
            counter.total += 1.0
            return True
        counter = self._c_misses
        counter.count += 1
        counter.total += 1.0
        counter = self._c_misses_demand if demand else self._c_misses_prefetch
        counter.count += 1
        counter.total += 1.0
        return False

    def contains(self, line_base: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        return line_base in self._set_for(line_base)

    def note_repeat_hits(self, n: int) -> None:
        """Account ``n`` further demand loads to a line just accessed.

        The scan driver batches the elements that share a cache line into
        one ``load_line`` call; the remaining element loads are guaranteed
        L1 hits, and this keeps the request/hit counters equal to what a
        per-element trace would produce (Figure 7 counts accesses).
        """
        if n <= 0:
            return
        for name in ("requests", "requests_demand", "hits"):
            counter = self.stats.counter(name)
            counter.count += n
            counter.total += n

    def fill(self, line_base: int, dirty: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted victim's address, if any.

        Filling a line that is already present just refreshes its LRU
        position (and ORs in the dirty bit). ``last_victim_dirty`` reports
        whether the returned victim needs a write-back.
        """
        cache_set = self._set_for(line_base)
        self.last_victim_dirty = False
        if line_base in cache_set:
            cache_set[line_base] = cache_set[line_base] or dirty
            cache_set.move_to_end(line_base)
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim, victim_dirty = cache_set.popitem(last=False)
            self.stats.bump("evictions")
            if victim_dirty:
                self.stats.bump("writebacks")
                self.last_victim_dirty = True
        cache_set[line_base] = dirty
        self.stats.bump("fills")
        return victim

    def touch_write(self, line_base: int) -> bool:
        """Mark a present line dirty; returns False if the line is absent."""
        cache_set = self._set_for(line_base)
        if line_base not in cache_set:
            return False
        cache_set[line_base] = True
        cache_set.move_to_end(line_base)
        return True

    def invalidate(self, line_base: int) -> None:
        self._set_for(line_base).pop(line_base, None)

    def flush(self) -> None:
        """Drop every line (between experiments)."""
        self._sets.clear()

    # -- introspection ------------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def miss_rate(self) -> float:
        requests = self.stats.count("requests")
        return self.stats.count("misses") / requests if requests else 0.0
