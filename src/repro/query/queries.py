"""Query descriptions and the Relational Memory Benchmark (Section 6.1).

A :class:`Query` describes what a scan computes: the projected columns or
aggregate, an optional selection predicate, an optional GROUP BY column,
and how many passes over the data it needs (one, except the standard
deviation of Q7, which the paper uses precisely because its second pass
rewards locality).

The seven benchmark queries over the relation ``S(A1..An)``:

====  ==========================================================
Q1    ``SELECT A1 FROM S``
Q2    ``SELECT A1 FROM S WHERE A2 > k``
Q3    ``SELECT A1, A2 FROM S``
Q4    ``SELECT SUM(A1) FROM S``
Q5    ``SELECT SUM(A2) FROM S WHERE A1 < k``
Q6    ``SELECT AVG(A1) FROM S WHERE A3 < k GROUP BY A2``
Q7    ``SELECT STD(A1) FROM S``
====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import QueryError
from .expr import Col, Expr

#: CPU cost (ns) of maintaining one aggregate accumulator per input row.
AGG_COST_NS = {
    "sum": 0.67,
    "count": 0.67,
    "min": 0.67,
    "max": 0.67,
    "avg": 1.33,  # sum + count
    "std": 2.67,  # sum + sum-of-products bookkeeping per pass
    None: 0.0,
}

#: CPU cost (ns) of one hash-table group update (probe + accumulate).
GROUP_BY_COST_NS = 4.0

#: CPU cost (ns) of inserting one row into a join hash table.
HASH_BUILD_NS = 4.0
#: CPU cost (ns) of probing the join hash table with one row.
HASH_PROBE_NS = 4.0

#: CPU cost (ns) of materialising one projected output value.
MATERIALIZE_COST_NS = 0.67


@dataclass(frozen=True)
class Query:
    """A single-table scan query."""

    name: str
    sql: str
    #: Columns whose values the scan must touch (projection + predicate +
    #: aggregate + group-by inputs). Order follows the schema at run time.
    select: Tuple[str, ...]
    predicate: Optional[Expr] = None
    aggregate: Optional[str] = None  #: None = pure projection
    agg_expr: Optional[Expr] = None
    group_by: Optional[str] = None
    passes: int = 1

    def __post_init__(self) -> None:
        if not self.select and self.agg_expr is None:
            raise QueryError(f"{self.name}: query selects nothing")
        if self.aggregate is not None and self.aggregate not in AGG_COST_NS:
            raise QueryError(f"{self.name}: unknown aggregate {self.aggregate!r}")
        if self.aggregate is not None and self.agg_expr is None:
            raise QueryError(f"{self.name}: aggregate without an expression")
        if self.passes < 1:
            raise QueryError(f"{self.name}: needs at least one pass")

    # -- column footprint -----------------------------------------------------------
    def columns(self) -> List[str]:
        """Every column the scan touches (deduplicated, stable order)."""
        seen = []
        for name in self.select:
            if name not in seen:
                seen.append(name)
        for expr in (self.predicate, self.agg_expr):
            if expr is not None:
                for name in sorted(expr.columns()):
                    if name not in seen:
                        seen.append(name)
        if self.group_by is not None and self.group_by not in seen:
            seen.append(self.group_by)
        return seen

    # -- compute-cost model -------------------------------------------------------------
    def predicate_cost_ns(self) -> float:
        return self.predicate.cost_ns() if self.predicate is not None else 0.0

    def work_cost_ns(self) -> float:
        """Cost of the per-row work done on rows that *pass* the predicate."""
        cost = 0.0
        if self.agg_expr is not None:
            cost += self.agg_expr.cost_ns() + AGG_COST_NS[self.aggregate]
        if self.group_by is not None:
            cost += GROUP_BY_COST_NS
        if self.aggregate is None:
            cost += MATERIALIZE_COST_NS * len(self.select)
        return cost

    def row_compute_ns(self, selectivity: float = 1.0) -> float:
        """Average per-row CPU cost given the predicate's selectivity."""
        if not 0.0 <= selectivity <= 1.0:
            raise QueryError(f"selectivity {selectivity} outside [0, 1]")
        return self.predicate_cost_ns() + selectivity * self.work_cost_ns()

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None


# ---------------------------------------------------------------------------
# The seven benchmark queries (Listings 5 and 6)
# ---------------------------------------------------------------------------


def q1(col: str = "A1") -> Query:
    """Q1: projection of a single column."""
    return Query(name="Q1", sql=f"SELECT {col} FROM S", select=(col,))


def q2(col: str = "A1", sel_col: str = "A2", k: float = 0) -> Query:
    """Q2: projection with a selection on a second column."""
    return Query(
        name="Q2",
        sql=f"SELECT {col} FROM S WHERE {sel_col} > {k}",
        select=(col,),
        predicate=Col(sel_col) > k,
    )


def q3(cols: Tuple[str, str] = ("A1", "A2")) -> Query:
    """Q3: higher-projectivity variant of Q1 (two columns)."""
    return Query(name="Q3", sql=f"SELECT {', '.join(cols)} FROM S", select=tuple(cols))


def q4(col: str = "A1") -> Query:
    """Q4: full-column summation."""
    return Query(
        name="Q4",
        sql=f"SELECT SUM({col}) FROM S",
        select=(),
        aggregate="sum",
        agg_expr=Col(col),
    )


def q5(agg_col: str = "A2", sel_col: str = "A1", k: float = 0) -> Query:
    """Q5: summation over the rows selected by another column."""
    return Query(
        name="Q5",
        sql=f"SELECT SUM({agg_col}) FROM S WHERE {sel_col} < {k}",
        select=(),
        aggregate="sum",
        agg_expr=Col(agg_col),
        predicate=Col(sel_col) < k,
    )


def q6(
    agg_col: str = "A1", group_col: str = "A2", sel_col: str = "A3", k: float = 0
) -> Query:
    """Q6: selective grouped average — the most complex single-pass query."""
    return Query(
        name="Q6",
        sql=(
            f"SELECT AVG({agg_col}) FROM S WHERE {sel_col} < {k} "
            f"GROUP BY {group_col}"
        ),
        select=(),
        aggregate="avg",
        agg_expr=Col(agg_col),
        predicate=Col(sel_col) < k,
        group_by=group_col,
    )


def q7(col: str = "A1") -> Query:
    """Q7: standard deviation — two passes, Eq. (7), rewards locality."""
    return Query(
        name="Q7",
        sql=f"SELECT STD({col}) FROM S",
        select=(),
        aggregate="std",
        agg_expr=Col(col),
        passes=2,
    )


def relational_memory_benchmark(k: float = 0) -> List[Query]:
    """All seven queries with a shared selection constant ``k``."""
    return [q1(), q2(k=k), q3(), q4(), q5(k=k), q6(k=k), q7()]


#: The default benchmark instance (k = 0 selects about half of centred data).
RELATIONAL_MEMORY_BENCHMARK = relational_memory_benchmark()
