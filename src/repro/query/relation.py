"""The relational-algebra IR: immutable ``Relation`` expression trees.

Modeled on lsst's ``daf_relation``: a :class:`Relation` is *a table with a
well-defined set of columns*, but an instance does not necessarily
correspond to a concrete in-memory table — most subclasses represent an
**operation** on a target relation, forming an expression tree that
visitors traverse (:class:`RelationVisitor`).  The tree is the planning
currency of the query layer: the SQL front-end produces one
(:func:`repro.query.sql.parse_relation`), the
:class:`~repro.query.processor.Processor` annotates it with engines and
:class:`Transfer` boundaries, and execution walks it.

Four kinds of node exist:

* :class:`LeafRelation` — direct storage of rows (the row-store table);
* operations — :class:`Projection` (the column-group fetch),
  :class:`Selection`, :class:`Aggregate`, :class:`Join`;
* :class:`Transfer` — an explicit engine boundary: the same rows, now
  owned by a different :class:`~repro.query.engines.Engine`;
* :class:`Label` — a marker that adds context (query name, SQL text,
  pass count) without changing the relation, like daf_relation's
  ``MarkerRelation``.

Every concrete node is a **frozen dataclass**: immutable, equality
comparable, hashable, with a lossless ``repr`` and a concise ``str``.
Derived trees are built with the factory methods on :class:`Relation`
(``select``/``project``/``aggregate``/``join``/``transfer``/``label``)
rather than by instantiating operation classes directly.

>>> leaf = LeafRelation("S", ("A1", "A2", "A3"))
>>> tree = leaf.project("A1", "A2").select(Col("A2") > 0)
>>> print(tree)
σ[(Col(A2) > Const(0))](π[A1,A2](S))
>>> tree.columns
('A1', 'A2')
>>> tree.engine.name
'cpu'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..errors import QueryError
from .engines import CPU, Engine
from .expr import Col, Expr  # noqa: F401  (Col re-exported for examples)


class Relation:
    """Base class of every IR node: a table with known columns.

    Subclasses are frozen dataclasses; this base only provides the
    factory methods that build derived trees and the visitor hook.

    >>> LeafRelation("S", ("A1",)).aggregate("sum", Col("A1")).columns
    ('sum(A1)',)
    """

    # -- contract -----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """The relation's column names, in order."""
        raise NotImplementedError

    @property
    def engine(self) -> Engine:
        """The engine that owns this relation's rows."""
        raise NotImplementedError

    def accept(self, visitor: "RelationVisitor") -> Any:
        """Double-dispatch into ``visitor`` (the daf_relation pattern)."""
        raise NotImplementedError

    # -- factories ----------------------------------------------------------------
    def select(self, predicate: Expr) -> "Selection":
        """Keep only the rows satisfying ``predicate``."""
        return Selection(target=self, predicate=predicate)

    def project(self, *columns: str) -> "Projection":
        """Keep only ``columns`` — the paper's column-group fetch."""
        return Projection(target=self, projected=tuple(columns))

    def aggregate(
        self,
        func: str,
        expr: Expr,
        group_by: Optional[str] = None,
        passes: int = 1,
    ) -> "Aggregate":
        """Reduce the rows with ``func`` over ``expr`` (optionally grouped)."""
        return Aggregate(target=self, func=func, expr=expr,
                         group_by=group_by, passes=passes)

    def join(self, other: "Relation", on: str) -> "Join":
        """Equi-join with ``other`` on the shared column ``on``."""
        return Join(lhs=self, rhs=other, on=on)

    def transfer(self, destination: Engine) -> "Relation":
        """Move the rows onto ``destination`` (no-op if already there)."""
        if destination == self.engine:
            return self
        return Transfer(target=self, destination=destination)

    def label(self, name: str, sql: str = "") -> "Label":
        """Attach a query name and SQL text without changing the rows."""
        return Label(target=self, name=name, sql=sql)


class RelationVisitor:
    """Base visitor over relation trees.

    Subclass and override the ``visit_*`` hooks; each receives the node
    and returns whatever the traversal computes. The default hooks all
    raise, so unsupported shapes fail loudly.

    >>> class CountLeaves(RelationVisitor):
    ...     def visit_leaf(self, node): return 1
    ...     def visit_projection(self, node): return node.target.accept(self)
    >>> LeafRelation("S", ("A1",)).project("A1").accept(CountLeaves())
    1
    """

    def _unsupported(self, node: Relation) -> Any:
        raise QueryError(
            f"{type(self).__name__} does not handle {type(node).__name__}"
        )

    def visit_leaf(self, node: "LeafRelation") -> Any:
        """Handle a stored table."""
        return self._unsupported(node)

    def visit_selection(self, node: "Selection") -> Any:
        """Handle a predicate filter."""
        return self._unsupported(node)

    def visit_projection(self, node: "Projection") -> Any:
        """Handle a column projection."""
        return self._unsupported(node)

    def visit_aggregate(self, node: "Aggregate") -> Any:
        """Handle an aggregation."""
        return self._unsupported(node)

    def visit_join(self, node: "Join") -> Any:
        """Handle an equi-join."""
        return self._unsupported(node)

    def visit_transfer(self, node: "Transfer") -> Any:
        """Handle an engine boundary."""
        return self._unsupported(node)

    def visit_label(self, node: "Label") -> Any:
        """Handle a marker; most visitors recurse into ``node.target``."""
        return self._unsupported(node)


@dataclass(frozen=True)
class LeafRelation(Relation):
    """Direct storage of rows: the row-oriented base table in DRAM.

    ``schema_columns`` may be ``None`` when the tree is built before the
    table is bound (e.g. straight from SQL); binding happens at plan
    time. The leaf always lives on an engine — by default the CPU's
    row-store memory.

    >>> LeafRelation("S", ("A1", "A2")).columns
    ('A1', 'A2')
    >>> str(LeafRelation("S"))
    'S'
    """

    name: str
    schema_columns: Optional[Tuple[str, ...]] = None
    on_engine: Engine = field(default=CPU)

    @property
    def columns(self) -> Tuple[str, ...]:
        """The stored columns (empty tuple when not yet bound)."""
        return self.schema_columns or ()

    @property
    def engine(self) -> Engine:
        """The engine holding the stored rows."""
        return self.on_engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_leaf`."""
        return visitor.visit_leaf(self)

    def __str__(self) -> str:
        return self.name


def _check_columns(op: str, needed, target: Relation) -> None:
    """Raise when ``needed`` columns are provably absent from ``target``."""
    have = target.columns
    if not have:  # unbound leaf below: defer the check to plan time
        return
    missing = [c for c in needed if c not in have]
    if missing:
        raise QueryError(f"{op} references columns {missing} missing from "
                         f"{target} (has {list(have)})")


@dataclass(frozen=True)
class Selection(Relation):
    """σ — keep only the rows satisfying ``predicate``.

    >>> sel = LeafRelation("S", ("A1", "A2")).select(Col("A2") > 0)
    >>> sel.columns
    ('A1', 'A2')
    >>> print(sel)
    σ[(Col(A2) > Const(0))](S)
    """

    target: Relation
    predicate: Expr

    def __post_init__(self) -> None:
        _check_columns("Selection", sorted(self.predicate.columns()),
                       self.target)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Selections do not change the column set."""
        return self.target.columns

    @property
    def engine(self) -> Engine:
        """Selections run where their input rows live."""
        return self.target.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_selection`."""
        return visitor.visit_selection(self)

    def __str__(self) -> str:
        return f"σ[{self.predicate!r}]({self.target})"


@dataclass(frozen=True)
class Projection(Relation):
    """π — keep only ``projected`` columns.

    Directly above a (possibly transferred) :class:`LeafRelation` this
    is the *column-group fetch*: the set of columns the access path must
    physically touch. Higher in the tree it is an ordinary output
    projection.

    >>> pi = LeafRelation("S", ("A1", "A2", "A3")).project("A1", "A3")
    >>> pi.columns
    ('A1', 'A3')
    >>> print(pi)
    π[A1,A3](S)
    """

    target: Relation
    projected: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.projected:
            raise QueryError("Projection keeps no columns")
        _check_columns("Projection", self.projected, self.target)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Exactly the projected columns, in the requested order."""
        return self.projected

    @property
    def engine(self) -> Engine:
        """Projections run where their input rows live."""
        return self.target.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_projection`."""
        return visitor.visit_projection(self)

    def __str__(self) -> str:
        return f"π[{','.join(self.projected)}]({self.target})"


@dataclass(frozen=True)
class Aggregate(Relation):
    """γ — reduce the input with one aggregate, optionally grouped.

    ``func`` is one of :data:`repro.query.ops.AGGREGATES`; ``passes``
    records how many scans the access pattern needs (``std`` is the
    paper's two-pass case, Q7).

    >>> agg = LeafRelation("S", ("A1", "A2")).aggregate("sum", Col("A1"))
    >>> agg.columns
    ('sum(A1)',)
    >>> print(LeafRelation("S", ("A1",)).aggregate("avg", Col("A1"),
    ...                                            group_by="A1"))
    γ[avg(Col(A1)) by A1](S)
    """

    target: Relation
    func: str
    expr: Expr
    group_by: Optional[str] = None
    passes: int = 1

    def __post_init__(self) -> None:
        from .ops import AGGREGATES

        if self.func not in AGGREGATES:
            raise QueryError(f"unknown aggregate {self.func!r}")
        if self.passes < 1:
            raise QueryError("Aggregate needs at least one pass")
        needed = sorted(self.expr.columns())
        if self.group_by is not None:
            needed = needed + [self.group_by]
        _check_columns("Aggregate", needed, self.target)

    @property
    def columns(self) -> Tuple[str, ...]:
        """One synthesized column (plus the group key when grouped)."""
        out = f"{self.func}({','.join(sorted(self.expr.columns())) or '*'})"
        if self.group_by is not None:
            return (self.group_by, out)
        return (out,)

    @property
    def engine(self) -> Engine:
        """Aggregation runs where its input rows live."""
        return self.target.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_aggregate`."""
        return visitor.visit_aggregate(self)

    def __str__(self) -> str:
        by = f" by {self.group_by}" if self.group_by else ""
        return f"γ[{self.func}({self.expr!r}){by}]({self.target})"


@dataclass(frozen=True)
class Join(Relation):
    """⋈ — equi-join of two relations on a shared column name.

    Both sides must live on the same engine; insert a :class:`Transfer`
    first when they do not. This node is the insertion point for future
    engine-executed joins (semi-join pushdown, PIM bitmap joins); the
    current :class:`~repro.query.processor.Processor` executes it as a
    CPU hash join over both scanned sides.

    >>> lhs = LeafRelation("R", ("k", "x"))
    >>> rhs = LeafRelation("T", ("k", "y"))
    >>> print(lhs.join(rhs, on="k"))
    (R ⋈[k] T)
    >>> lhs.join(rhs, on="k").columns
    ('k', 'x', 'y')
    """

    lhs: Relation
    rhs: Relation
    on: str

    def __post_init__(self) -> None:
        _check_columns("Join", [self.on], self.lhs)
        _check_columns("Join", [self.on], self.rhs)
        if self.lhs.engine != self.rhs.engine:
            raise QueryError(
                f"Join inputs live on different engines "
                f"({self.lhs.engine.name} vs {self.rhs.engine.name}); "
                "insert a Transfer first"
            )

    @property
    def columns(self) -> Tuple[str, ...]:
        """The key once, then both sides' remaining columns."""
        rest = [c for c in self.lhs.columns if c != self.on]
        rest += [c for c in self.rhs.columns
                 if c != self.on and c not in rest]
        return (self.on, *rest)

    @property
    def engine(self) -> Engine:
        """Both inputs share one engine; the join runs there."""
        return self.lhs.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_join`."""
        return visitor.visit_join(self)

    def __str__(self) -> str:
        return f"({self.lhs} ⋈[{self.on}] {self.rhs})"


@dataclass(frozen=True)
class Transfer(Relation):
    """An explicit engine boundary: the same rows on ``destination``.

    Everything below the transfer is produced by the source engine;
    everything above consumes it on ``destination``. The two transfers
    of the canonical RME plan are the paper's dataflow: descriptors move
    the row store into the PL (cpu → rme), and the trapper port streams
    the packed projection back (rme → cpu).

    >>> from repro.query.engines import RME
    >>> t = LeafRelation("S", ("A1",)).transfer(RME)
    >>> t.engine.name
    'rme'
    >>> print(t)
    [cpu→rme](S)
    """

    target: Relation
    destination: Engine

    def __post_init__(self) -> None:
        if self.destination == self.target.engine:
            raise QueryError(
                f"Transfer to {self.destination.name} is a no-op: the target "
                "already lives there"
            )

    @property
    def columns(self) -> Tuple[str, ...]:
        """Transfers move rows; they do not change the column set."""
        return self.target.columns

    @property
    def engine(self) -> Engine:
        """The destination engine owns the transferred rows."""
        return self.destination

    @property
    def source(self) -> Engine:
        """The engine the rows come from."""
        return self.target.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_transfer`."""
        return visitor.visit_transfer(self)

    def __str__(self) -> str:
        return f"[{self.source.name}→{self.destination.name}]({self.target})"


@dataclass(frozen=True)
class Label(Relation):
    """A marker relation: context attached to a tree, rows unchanged.

    daf_relation's ``MarkerRelation`` analogue. The query layer uses it
    to carry the benchmark name and SQL text to the root of a plan so
    results and printed trees stay identifiable.

    >>> tree = LeafRelation("S", ("A1",)).project("A1").label("Q1",
    ...                                                       "SELECT A1 FROM S")
    >>> tree.name, tree.columns
    ('Q1', ('A1',))
    """

    target: Relation
    name: str
    sql: str = ""

    @property
    def columns(self) -> Tuple[str, ...]:
        """Markers do not change the column set."""
        return self.target.columns

    @property
    def engine(self) -> Engine:
        """Markers do not change engine ownership."""
        return self.target.engine

    def accept(self, visitor: RelationVisitor) -> Any:
        """Dispatch to :meth:`RelationVisitor.visit_label`."""
        return visitor.visit_label(self)

    def __str__(self) -> str:
        return f"{self.name}:{self.target}"


class _TreePrinter(RelationVisitor):
    """Renders a relation tree as an engine-annotated text diagram."""

    def _line(self, node: Relation, text: str) -> str:
        return f"{text} @{node.engine.name}"

    def _nest(self, parent: str, child: str) -> str:
        first, *rest = child.splitlines()
        out = [parent, f"└─ {first}"]
        out.extend(f"   {line}" for line in rest)
        return "\n".join(out)

    def visit_leaf(self, node: LeafRelation) -> str:
        """One line: the stored table and its engine."""
        cols = f"({','.join(node.columns)})" if node.columns else ""
        return self._line(node, f"Leaf[{node.name}]{cols}")

    def visit_selection(self, node: Selection) -> str:
        """The predicate, then the subtree."""
        return self._nest(self._line(node, f"Selection[{node.predicate!r}]"),
                          node.target.accept(self))

    def visit_projection(self, node: Projection) -> str:
        """The kept columns, then the subtree."""
        return self._nest(
            self._line(node, f"Projection[{','.join(node.projected)}]"),
            node.target.accept(self),
        )

    def visit_aggregate(self, node: Aggregate) -> str:
        """The aggregate spec, then the subtree."""
        by = f" by {node.group_by}" if node.group_by else ""
        passes = f" x{node.passes}" if node.passes > 1 else ""
        return self._nest(
            self._line(node,
                       f"Aggregate[{node.func}({node.expr!r}){by}{passes}]"),
            node.target.accept(self),
        )

    def visit_join(self, node: Join) -> str:
        """The join key, then both subtrees."""
        parent = self._line(node, f"Join[{node.on}]")
        left = node.lhs.accept(self)
        right = node.rhs.accept(self)
        out = [parent]
        first, *rest = left.splitlines()
        out.append(f"├─ {first}")
        out.extend(f"│  {line}" for line in rest)
        first, *rest = right.splitlines()
        out.append(f"└─ {first}")
        out.extend(f"   {line}" for line in rest)
        return "\n".join(out)

    def visit_transfer(self, node: Transfer) -> str:
        """The boundary, then the subtree."""
        return self._nest(
            f"Transfer[{node.source.name} → {node.destination.name}]",
            node.target.accept(self),
        )

    def visit_label(self, node: Label) -> str:
        """The query name/SQL header, then the subtree."""
        sql = f": {node.sql}" if node.sql else ""
        return self._nest(f"Plan[{node.name}]{sql}", node.target.accept(self))


def print_tree(relation: Relation) -> str:
    """Render ``relation`` as a multi-line engine-annotated tree.

    Every operation line carries the engine that owns its rows
    (``@cpu``, ``@rme``, ...) and :class:`Transfer` boundaries are
    explicit — the format behind ``repro bench fig06 --explain``.

    >>> print(print_tree(LeafRelation("S", ("A1", "A2")).project("A1")))
    Projection[A1] @cpu
    └─ Leaf[S](A1,A2) @cpu
    """
    return relation.accept(_TreePrinter())
