"""The query executor: functional answers plus simulated timing.

For each query the executor does two things:

1. **Compute the answer** with the pure-Python operators of
   :mod:`repro.query.ops` over the table's actual values (applying MVCC
   visibility when an ephemeral variable carries a snapshot).
2. **Price the execution** by replaying the query's memory access pattern
   on the simulated platform: a strided scan over the row-store (direct),
   a packed scan over a columnar copy, or a packed scan over the
   ephemeral region served by the RME — one segment per pass, with the
   per-row compute cost derived from the query's expression tree and the
   measured predicate selectivity.

This split keeps results byte-verifiable (the RME's packed buffer is
checked against software projections in the test suite) while the timing
reflects the co-design's memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.access_path import AccessPath
from ..core.ephemeral import EphemeralVariable
from ..core.relmem import (
    LoadedColumnGroup,
    LoadedIndex,
    LoadedTable,
    RelationalMemorySystem,
)
from ..errors import FaultError, QueryError, SimulationError
from ..memsys.cpu import ScanSegment
from . import ops
from .expr import key_range
from .queries import HASH_BUILD_NS, HASH_PROBE_NS, Query

#: CPU cost (ns) of the binary search inside one B+-tree node.
_NODE_SEARCH_NS = 2.7


@dataclass
class JoinScan:
    """One executed join input-pair: the joined rows plus the bill.

    The processor finalises this into a :class:`QueryResult` after
    applying the operators above the Join node; ``rhs_rows`` (surviving
    right-side rows) is the denominator of the reported selectivity.
    """

    rows: List[Dict[str, Any]]
    elapsed_ns: float
    rows_scanned: int
    rhs_rows: int
    path: AccessPath
    state: str


@dataclass
class QueryResult:
    """Everything one execution produced."""

    query: str
    path: AccessPath
    value: Any
    elapsed_ns: float
    rows_scanned: int
    selectivity: float
    state: str  #: "cold" / "hot" for the RME path, "-" otherwise
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ns_per_row(self) -> float:
        return self.elapsed_ns / self.rows_scanned if self.rows_scanned else 0.0


class QueryExecutor:
    """Runs queries over a loaded table via any access path."""

    def __init__(self, system: RelationalMemorySystem):
        self.system = system
        #: Lazily-built :class:`repro.pim.BankPIM` device for run_pim.
        self._pim = None

    # -- public entry points ------------------------------------------------------
    def run_direct(
        self, query: Query, loaded: LoadedTable, flush: bool = True
    ) -> QueryResult:
        """Scan the row-oriented base table (the paper's Direct Access)."""
        offset, width = loaded.schema.covering_group(query.columns())
        value, selectivity, n_rows = self._answer(query, loaded)
        compute = query.row_compute_ns(selectivity)
        segment = ScanSegment(
            start=loaded.base_addr + offset,
            n_elems=n_rows,
            elem_size=width,
            stride=loaded.schema.row_size,
            compute_ns=compute,
            name=f"direct:{query.name}",
        )
        elapsed = self._measure([segment] * query.passes, flush)
        return self._result(query, AccessPath.DIRECT_ROW, value, elapsed,
                            n_rows, selectivity, "-")

    def run_columnar(
        self,
        query: Query,
        loaded: LoadedTable,
        columnar: LoadedColumnGroup,
        flush: bool = True,
    ) -> QueryResult:
        """Scan a materialised columnar copy (the Columnar baseline)."""
        needed = query.columns()
        missing = [c for c in needed if c not in columnar.columns]
        if missing:
            raise QueryError(
                f"columnar copy {columnar.name!r} lacks columns {missing}"
            )
        value, selectivity, n_rows = self._answer(query, loaded)
        compute = query.row_compute_ns(selectivity)
        segment = ScanSegment(
            start=columnar.base_addr,
            n_elems=columnar.n_rows,
            elem_size=columnar.width,
            stride=columnar.width,
            compute_ns=compute,
            name=f"columnar:{query.name}",
        )
        elapsed = self._measure([segment] * query.passes, flush)
        return self._result(query, AccessPath.COLUMNAR, value, elapsed,
                            n_rows, selectivity, "-")

    def run_rme(
        self,
        query: Query,
        var: EphemeralVariable,
        flush: bool = True,
    ) -> QueryResult:
        """Scan through the ephemeral variable (cold or hot as it stands)."""
        needed = query.columns()
        missing = [c for c in needed if c not in var.group_schema]
        if missing:
            raise QueryError(
                f"ephemeral view {var.name!r} lacks columns {missing}"
            )
        self.system.activate(var)
        state = "hot" if var.is_hot else "cold"
        value, selectivity, n_rows = self._answer(query, var.loaded, var)
        compute = query.row_compute_ns(selectivity)
        segments = var.scan_segment(compute, query.passes)
        faults = self.system.faults
        if faults is None:
            elapsed = self._measure(segments, flush)
            return self._result(query, AccessPath.RME, value, elapsed,
                                n_rows, selectivity, state)
        sim = self.system.sim
        start_ns = sim.now
        try:
            elapsed = self._measure(segments, flush)
        except FaultError as error:
            # The engine declared the access unrecoverable mid-scan. The
            # simulated time already burnt stays on the bill; the answer
            # is recomputed from the authoritative base table (same
            # snapshot semantics — ``value`` came from the variable's
            # visible versions, so degradation is staleness-free).
            wasted = sim.now - start_ns
            faults.stats.bump("rme_faults")
            faults.stats.bump("wasted_ns", wasted)
            faults.stats.bump(f"fault_{type(error).__name__}")
            self._drain_fault_wreckage()
            self.system.deactivate()
            if not faults.recovery.cpu_fallback:
                raise
            faults.stats.bump("cpu_fallbacks")
            rescan = self._direct_rescan_ns(query, var, selectivity)
            return self._result(query, AccessPath.DIRECT_ROW, value,
                                wasted + rescan, n_rows, selectivity,
                                "degraded")
        audited = self._audit_rme(query, var, value, selectivity, n_rows,
                                  elapsed)
        if audited is not None:
            return audited
        return self._result(query, AccessPath.RME, value, elapsed,
                            n_rows, selectivity, state)

    def run_pim(
        self, query: Query, loaded: LoadedTable, flush: bool = True
    ) -> QueryResult:
        """Evaluate the query inside the DRAM banks (bank-level PIM).

        Selection compiles onto the in-bank comparator array, aggregation
        onto the in-bank accumulator; only the merged selection bitmap or
        an aggregate register line crosses the AXI boundary, plus — for
        projection queries — the CPU's point-gather of the matching rows.
        The fault contract mirrors :meth:`run_rme`: an unrecoverable
        in-bank fault keeps its wasted simulated time on the bill, and
        (policy permitting) the answer is recomputed by a direct CPU
        re-scan with state ``"degraded"``.
        """
        from ..pim import BankPIM

        if self._pim is None or self._pim.system is not self.system:
            self._pim = BankPIM(self.system)
        device = self._pim
        if flush:
            self.system.flush_caches()
        self.system.reset_stats()
        faults = self.system.faults
        try:
            execution = device.run(query, loaded)
        except FaultError as error:
            faults.stats.bump("pim_faults")
            faults.stats.bump("wasted_ns", device.last_wasted_ns)
            faults.stats.bump(f"fault_{type(error).__name__}")
            self._drain_fault_wreckage()
            if not faults.recovery.cpu_fallback:
                raise
            faults.stats.bump("cpu_fallbacks")
            value, selectivity, n_rows = self._answer(query, loaded)
            rescan = self._fallback_rescan_ns(query, loaded, selectivity)
            return self._result(query, AccessPath.DIRECT_ROW, value,
                                device.last_wasted_ns + rescan, n_rows,
                                selectivity, "degraded")
        return self._result(query, AccessPath.PIM, execution.value,
                            execution.elapsed_ns, execution.n_rows,
                            execution.selectivity, "-")

    def run_pim_join(
        self,
        on: str,
        lhs_query: Query,
        lhs_loaded: LoadedTable,
        rhs_query: Query,
        rhs_loaded: LoadedTable,
        flush: bool = True,
    ) -> JoinScan:
        """Hash-join two plain tables inside the DRAM banks.

        Both sides filter at the banks, the smaller surviving side
        builds per-bank hash tables, the larger side probes them; only
        matched row-id pairs cross the AXI boundary before the CPU
        gathers the joined rows. The fault contract mirrors
        :meth:`run_pim`: an unrecoverable in-bank fault keeps its wasted
        simulated time on the bill and (policy permitting) the join is
        recomputed in software over two direct re-scans, with state
        ``"degraded"``.
        """
        from ..pim import BankPIM

        if self._pim is None or self._pim.system is not self.system:
            self._pim = BankPIM(self.system)
        device = self._pim
        if flush:
            self.system.flush_caches()
        self.system.reset_stats()
        faults = self.system.faults
        try:
            execution = device.run_join(on, lhs_query, lhs_loaded,
                                        rhs_query, rhs_loaded)
        except FaultError as error:
            faults.stats.bump("pim_faults")
            faults.stats.bump("wasted_ns", device.last_wasted_ns)
            faults.stats.bump(f"fault_{type(error).__name__}")
            self._drain_fault_wreckage()
            if not faults.recovery.cpu_fallback:
                raise
            faults.stats.bump("cpu_fallbacks")
            elapsed = device.last_wasted_ns
            sides: List[List[Dict[str, Any]]] = []
            for query, loaded in ((lhs_query, lhs_loaded),
                                  (rhs_query, rhs_loaded)):
                kept = ops.filter_rows(
                    self._rows(loaded, query.columns(), None), query.predicate
                )
                n = loaded.table.n_rows
                elapsed += self._fallback_rescan_ns(
                    query, loaded, len(kept) / n if n else 0.0
                )
                sides.append([{c: row[c] for c in query.select}
                              for row in kept])
            joined = ops.hash_join(sides[0], sides[1], on)
            elapsed += (HASH_BUILD_NS * len(sides[0])
                        + HASH_PROBE_NS * len(sides[1]))
            return JoinScan(
                rows=joined,
                elapsed_ns=elapsed,
                rows_scanned=(lhs_loaded.table.n_rows
                              + rhs_loaded.table.n_rows),
                rhs_rows=len(sides[1]),
                path=AccessPath.DIRECT_ROW,
                state="degraded",
            )
        return JoinScan(
            rows=execution.rows,
            elapsed_ns=execution.elapsed_ns,
            rows_scanned=execution.n_rows,
            rhs_rows=execution.rhs_rows,
            path=AccessPath.PIM,
            state="-",
        )

    def run_rme_pushdown(
        self,
        query: Query,
        var: EphemeralVariable,
        flush: bool = True,
    ) -> QueryResult:
        """Scan a *filtered* ephemeral view (selection pushdown).

        The variable's hardware comparator must implement the query's
        predicate (build it with
        :meth:`RelationalMemorySystem.register_filtered_var` from the same
        condition); the CPU then scans only matching rows and spends no
        cycles on the comparison.
        """
        from ..core.ephemeral import FilteredEphemeralVariable

        if not isinstance(var, FilteredEphemeralVariable):
            raise QueryError("run_rme_pushdown needs a filtered ephemeral view")
        self.system.activate(var)
        state = "hot" if var.is_hot else "cold"
        # Functional: the view is pre-filtered; apply any residual predicate
        # for safety (a no-op when it matches the hardware comparator).
        names = var.group_schema.names
        rows = [dict(zip(names, row)) for row in var.values()]
        kept = ops.filter_rows(rows, query.predicate)
        value = self._finalize(query, kept)
        n_rows = var.loaded.table.n_rows
        selectivity = len(kept) / n_rows if n_rows else 0.0
        # Timing: matching rows only, and no predicate cost on the CPU.
        segments = var.scan_segment(query.work_cost_ns(), query.passes)
        elapsed = self._measure(segments, flush)
        return self._result(query, AccessPath.RME, value, elapsed,
                            n_rows, selectivity, state)

    def run_rme_hw_aggregate(self, var: EphemeralVariable, flush: bool = True) -> QueryResult:
        """Read a PL-computed aggregate: one register line of traffic.

        The variable comes from
        :meth:`RelationalMemorySystem.register_hw_aggregate`; cold, the
        read stalls until the engine's fetch stream drains (the whole
        aggregation happens in hardware), hot it is a single buffer hit.
        """
        from ..core.ephemeral import HWAggregateVariable

        if not isinstance(var, HWAggregateVariable):
            raise QueryError("run_rme_hw_aggregate needs a HW-aggregate view")
        self.system.activate(var)
        state = "hot" if self.system.rme.pushdown_done and self.system.is_active(var) else "cold"
        value = var.expected_result()
        segments = var.scan_segment()
        elapsed = self._measure(segments, flush)
        agg = var.hw_aggregation
        n_rows = var.loaded.table.n_rows
        return self._result(
            Query(name=f"hw_{agg.func}", sql=f"PL {agg.func} pushdown",
                  select=("__register__",)),
            AccessPath.RME, value, elapsed, n_rows, 1.0, state,
        )

    def run_rme_hw_group_by(self, var: EphemeralVariable, flush: bool = True) -> QueryResult:
        """Read a PL-computed GROUP BY table: one 16-byte entry per group."""
        from ..core.ephemeral import HWGroupByVariable

        if not isinstance(var, HWGroupByVariable):
            raise QueryError("run_rme_hw_group_by needs a HW group-by view")
        self.system.activate(var)
        state = "hot" if self.system.rme.pushdown_done and self.system.is_active(var) else "cold"
        value = var.expected_result()
        elapsed = self._measure(var.scan_segment(), flush)
        cfg = var.hw_group_by
        n_rows = var.loaded.table.n_rows
        return self._result(
            Query(name=f"hw_groupby_{cfg.func}",
                  sql=f"PL {cfg.func} GROUP BY pushdown",
                  select=("__groups__",)),
            AccessPath.RME, value, elapsed, n_rows, 1.0, state,
        )

    def run_index(
        self,
        query: Query,
        loaded: LoadedTable,
        loaded_index: LoadedIndex,
        flush: bool = True,
    ) -> QueryResult:
        """Probe a B+-tree and fetch only the qualifying rows.

        The query's predicate must impose a simple range on the indexed
        column; the index narrows the scan to matching rows (a point
        access per match), which wins only for very selective queries —
        the trade-off Section 4 describes.
        """
        index = loaded_index.index
        if query.predicate is None:
            raise QueryError("the index path needs a selective predicate")
        bounds = key_range(query.predicate, index.column)
        if bounds is None:
            raise QueryError(
                f"predicate {query.predicate!r} does not impose a range on "
                f"indexed column {index.column!r}"
            )
        low, high, inclusive = bounds
        row_ids = index.range(low, high, inclusive)

        # Functional answer over exactly the matched rows.
        columns = query.columns()
        all_rows = self._rows(loaded, columns, None)
        matched = [all_rows[i] for i in row_ids if i < len(all_rows)]
        kept = ops.filter_rows(matched, query.predicate)  # residual filter
        value = self._finalize(query, kept)
        n_rows = loaded.table.n_rows
        selectivity = len(kept) / n_rows if n_rows else 0.0

        # Timing: root-to-leaf probe + leaf chain + one row touch per match.
        if flush:
            self.system.flush_caches()
        self.system.reset_stats()
        probe = loaded_index.probe_points(low if low is not None else high)
        leaves = loaded_index.leaf_points(low, high)
        offset, width = loaded.schema.covering_group(columns)
        row_size = loaded.schema.row_size
        fetches = [
            (loaded.base_addr + rid * row_size + offset, width) for rid in row_ids
        ]
        elapsed = self.system.measure_points(probe + leaves, _NODE_SEARCH_NS)
        elapsed += self.system.measure_points(
            fetches, query.work_cost_ns() + query.predicate_cost_ns()
        )
        result = self._result(query, AccessPath.INDEX, value, elapsed,
                              n_rows, selectivity, "-")
        return result

    def run(
        self,
        query: Query,
        loaded: LoadedTable,
        path: AccessPath,
        var: Optional[EphemeralVariable] = None,
        columnar: Optional[LoadedColumnGroup] = None,
        index: Optional[LoadedIndex] = None,
        flush: bool = True,
    ) -> QueryResult:
        """Dispatch on the access path."""
        if path is AccessPath.DIRECT_ROW:
            return self.run_direct(query, loaded, flush)
        if path is AccessPath.COLUMNAR:
            if columnar is None:
                raise QueryError("columnar path requires a materialised copy")
            return self.run_columnar(query, loaded, columnar, flush)
        if path is AccessPath.RME:
            if var is None:
                raise QueryError("RME path requires an ephemeral variable")
            return self.run_rme(query, var, flush)
        if path is AccessPath.INDEX:
            if index is None:
                raise QueryError("index path requires a loaded index")
            return self.run_index(query, loaded, index, flush)
        if path is AccessPath.PIM:
            return self.run_pim(query, loaded, flush)
        raise QueryError(f"unknown access path {path!r}")

    # -- functional evaluation -----------------------------------------------------
    def _answer(
        self,
        query: Query,
        loaded: LoadedTable,
        var: Optional[EphemeralVariable] = None,
    ):
        """Returns ``(value, selectivity, physical_rows_scanned)``.

        The scan always walks every *physical* row (superseded MVCC
        versions included — that is what sits in memory); the answer only
        uses versions visible at the snapshot, matching what the RME
        regenerates for ephemeral variables.
        """
        columns = query.columns()
        rows = self._rows(loaded, columns, var)
        n_rows = loaded.table.n_rows
        kept = ops.filter_rows(rows, query.predicate)
        selectivity = len(kept) / n_rows if n_rows else 0.0
        return self._finalize(query, kept), selectivity, n_rows

    @staticmethod
    def _finalize(query: Query, kept: List[Dict[str, Any]]) -> Any:
        """Aggregate / group / project the filtered rows."""
        if query.group_by is not None:
            return ops.group_aggregate(
                kept, query.group_by, query.aggregate, query.agg_expr
            )
        if query.aggregate is not None:
            values = [query.agg_expr.eval(row) for row in kept]
            return ops.aggregate(query.aggregate, values)
        return ops.project(kept, query.select)

    @staticmethod
    def _rows(
        loaded: LoadedTable,
        columns: Sequence[str],
        var: Optional[EphemeralVariable],
    ) -> List[Dict[str, Any]]:
        if var is not None:
            names = var.group_schema.names
            return [dict(zip(names, row)) for row in var.values()]
        tuples = loaded.table.project_values(list(columns))
        rows = [dict(zip(columns, row)) for row in tuples]
        if loaded.versioned is not None:
            # A row-at-a-time engine checks the begin/end timestamps while
            # scanning; only currently-valid versions contribute.
            mask = loaded.versioned.visibility_mask(loaded.current_ts())
            rows = [row for row, visible in zip(rows, mask) if visible]
        return rows

    # -- fault handling ------------------------------------------------------------
    def _drain_fault_wreckage(self) -> None:
        """Run the simulator to empty after a fault escaped a measure.

        Other in-flight processes (prefetch fills stalled on the failed
        session) were woken with the same exception; each surfaces from a
        later ``sim.run`` and must be absorbed before the next clean
        measurement."""
        while True:
            try:
                self.system.sim.run()
            except FaultError:
                self.system.faults.stats.bump("wreckage_drained")
                continue
            return

    def _direct_rescan_ns(self, query: Query, var: EphemeralVariable,
                          selectivity: float) -> float:
        return self._fallback_rescan_ns(query, var.loaded, selectivity)

    def _fallback_rescan_ns(self, query: Query, loaded: LoadedTable,
                            selectivity: float) -> float:
        """Price the degraded-mode base-table re-scan (no cache flush —
        the fault interrupted a run already in progress)."""
        offset, width = loaded.schema.covering_group(query.columns())
        segment = ScanSegment(
            start=loaded.base_addr + offset,
            n_elems=loaded.table.n_rows,
            elem_size=width,
            stride=loaded.schema.row_size,
            compute_ns=query.row_compute_ns(selectivity),
            name=f"fallback:{query.name}",
        )
        return self._measure([segment] * query.passes, flush=False)

    def _audit_rme(self, query, var, value, selectivity, n_rows, elapsed):
        """End-to-end check of the packed projection after a clean scan.

        Catches corruption that slipped past ECC, descriptor CRC and
        buffer parity (escaped multi-bit flips, checks disabled by
        policy). Returns a replacement result when the projection is
        corrupt, else None. Only plain full projections are auditable —
        windowed and pushdown variables never hold the whole projection.
        """
        faults = self.system.faults
        if (var.windowed or getattr(var, "pushdown", None) is not None
                or not self.system.is_active(var)):
            return None
        try:
            actual = self.system.rme.packed_bytes()
        except SimulationError:
            return None
        if actual == var.expected_packed_bytes():
            return None
        faults.stats.bump("corrupt_projections")
        if faults.recovery.crc_checks:
            # The software checksum pass catches it: re-answer from the
            # base table and make the next access reconfigure.
            faults.stats.bump("crc_catches")
            self.system.deactivate()
            rescan = self._direct_rescan_ns(query, var, selectivity)
            return self._result(query, AccessPath.DIRECT_ROW, value,
                                elapsed + rescan, n_rows, selectivity,
                                "degraded")
        # Undetected with checks off: the CPU really computes over the
        # corrupted bytes. Decode what the buffer holds and answer from
        # that — wrong on purpose, flagged for the chaos harness.
        faults.stats.bump("silent_corruptions")
        corrupted = self._decode_packed(query, var, actual)
        return self._result(query, AccessPath.RME, corrupted, elapsed,
                            n_rows, selectivity, "corrupt")

    def _decode_packed(self, query: Query, var: EphemeralVariable,
                       packed: bytes):
        """Evaluate the query over raw packed buffer bytes."""
        schema = var.group_schema
        width = schema.row_size
        rows = [
            dict(zip(schema.names, schema.unpack_row(packed[off:off + width])))
            for off in range(0, len(packed) - width + 1, width)
        ]
        kept = ops.filter_rows(rows, query.predicate)
        return self._finalize(query, kept)

    # -- timing ------------------------------------------------------------------------
    def _measure(self, segments: Sequence[ScanSegment], flush: bool) -> float:
        if flush:
            self.system.flush_caches()
        self.system.reset_stats()
        return self.system.measure(segments)

    def _result(self, query, path, value, elapsed, n_rows, selectivity, state):
        return QueryResult(
            query=query.name,
            path=path,
            value=value,
            elapsed_ns=elapsed,
            rows_scanned=n_rows,
            selectivity=selectivity,
            state=state,
            cache_stats=self.system.cache_stats(),
        )
