"""Scalar expressions and predicates over row tuples.

A tiny expression tree sufficient for the paper's benchmark queries:
column references, constants, arithmetic and comparisons. Every node
knows its referenced columns (to size the ephemeral column group), how to
evaluate itself against a row environment, and a per-evaluation CPU cost
in nanoseconds — the compute side of the scan-loop timing model.

Costs are calibrated for a 1.5 GHz in-order core: simple ALU ops take
about two-thirds of a nanosecond, multiplies slightly more, divides much
more. They only matter *relative* to memory costs.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet

from ..errors import QueryError

#: Per-operator CPU cost (ns) on the modelled core.
OP_COST_NS = {
    "+": 0.67,
    "-": 0.67,
    "*": 1.33,
    "/": 8.0,
    ">": 0.67,
    ">=": 0.67,
    "<": 0.67,
    "<=": 0.67,
    "==": 0.67,
    "!=": 0.67,
    "and": 0.67,
    "or": 0.67,
}

_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


class Expr:
    """Base expression node; builds trees via operator overloading."""

    def eval(self, env: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def cost_ns(self) -> float:
        """CPU nanoseconds to evaluate this node once."""
        raise NotImplementedError

    # -- tree building -----------------------------------------------------------
    def _bin(self, op: str, other: Any) -> "BinOp":
        other_expr = other if isinstance(other, Expr) else Const(other)
        return BinOp(op, self, other_expr)

    def __add__(self, other: Any) -> "BinOp":
        return self._bin("+", other)

    def __sub__(self, other: Any) -> "BinOp":
        return self._bin("-", other)

    def __mul__(self, other: Any) -> "BinOp":
        return self._bin("*", other)

    def __truediv__(self, other: Any) -> "BinOp":
        return self._bin("/", other)

    def __gt__(self, other: Any) -> "BinOp":
        return self._bin(">", other)

    def __ge__(self, other: Any) -> "BinOp":
        return self._bin(">=", other)

    def __lt__(self, other: Any) -> "BinOp":
        return self._bin("<", other)

    def __le__(self, other: Any) -> "BinOp":
        return self._bin("<=", other)

    def eq(self, other: Any) -> "BinOp":
        """Equality predicate (named method: ``__eq__`` stays identity)."""
        return self._bin("==", other)

    def ne(self, other: Any) -> "BinOp":
        return self._bin("!=", other)

    def and_(self, other: Any) -> "BinOp":
        return self._bin("and", other)

    def or_(self, other: Any) -> "BinOp":
        return self._bin("or", other)


class Col(Expr):
    """A reference to a column of the scanned relation."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise QueryError("column reference needs a name")
        self.name = name

    def eval(self, env: Dict[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError:
            raise QueryError(f"column {self.name!r} missing from row") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def cost_ns(self) -> float:
        # A register-resident load; the memory system prices the real fetch.
        return 0.33

    def __repr__(self) -> str:
        return f"Col({self.name})"


class Const(Expr):
    """A literal value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def eval(self, env: Dict[str, Any]) -> Any:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def cost_ns(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


def key_range(expr: "Expr", column: str):
    """Extract the index-usable range a predicate imposes on ``column``.

    Returns ``(low, high, (low_inclusive, high_inclusive))`` with ``None``
    for an open bound, or ``None`` when the predicate is not a simple
    comparison between the column and a constant (those run as filters).
    """
    if not isinstance(expr, BinOp):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Col) and isinstance(right, Const) and left.name == column:
        value = right.value
    elif isinstance(right, Col) and isinstance(left, Const) and right.name == column:
        # Mirror the comparison: const OP col  ==  col OP' const.
        value = left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}.get(op)
        if op is None:
            return None
    else:
        return None
    if op == "<":
        return (None, value, (True, False))
    if op == "<=":
        return (None, value, (True, True))
    if op == ">":
        return (value, None, (False, True))
    if op == ">=":
        return (value, None, (True, True))
    if op == "==":
        return (value, value, (True, True))
    return None


class BinOp(Expr):
    """A binary arithmetic, comparison or boolean node."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _OPS:
            raise QueryError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Dict[str, Any]) -> Any:
        return _OPS[self.op](self.left.eval(env), self.right.eval(env))

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def cost_ns(self) -> float:
        return OP_COST_NS[self.op] + self.left.cost_ns() + self.right.cost_ns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"
