"""The query layer: a relational-algebra IR with pluggable engines.

Queries are immutable :class:`~repro.query.relation.Relation` expression
trees — Selection, Projection (the column-group fetch), Join, Aggregate
as frozen dataclasses — annotated with
:class:`~repro.query.engines.Engine` objects (RME column-group
projection, CPU row scan, columnar copy, index, degraded fallback) and
explicit :class:`~repro.query.relation.Transfer` nodes at engine
boundaries. The visitor-based
:class:`~repro.query.processor.Processor` plans (cost-based RME-vs-CPU
placement) and executes multi-engine trees.

Execution follows the paper's philosophy (Section 3): the hardware only
*reorganises* data; all actual computation — selection, aggregation,
group-by — runs on the CPU, priced as per-element compute on top of the
memory access pattern. The measured scan machinery lives in
:class:`~repro.query.executor.QueryExecutor`, which the engines
delegate to — so IR execution is cycle-identical to the historical
pipeline (``tests/test_ir_equivalence.py`` pins this).
"""

from .engines import (
    ALL_ENGINES,
    COLUMNAR,
    CPU,
    DEGRADED,
    ENGINES,
    INDEX,
    PIM,
    RME,
    ColumnarEngine,
    CpuEngine,
    DegradedEngine,
    Engine,
    IndexEngine,
    PimEngine,
    RmeEngine,
    engine_by_name,
    engine_names,
)
from .expr import BinOp, Col, Const, Expr
from .executor import QueryExecutor, QueryResult
from .optimizer import AccessPathChoice, choose_access_path
from .processor import (
    ExecutionPlan,
    ExecutionReport,
    Processor,
    explain_placement,
    relation_from_query,
    reroot_degraded,
    to_query,
)
from .relation import (
    Aggregate,
    Join,
    Label,
    LeafRelation,
    Projection,
    Relation,
    RelationVisitor,
    Selection,
    Transfer,
    print_tree,
)
from .sql import parse_query, parse_relation
from .queries import (
    Query,
    RELATIONAL_MEMORY_BENCHMARK,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
)

__all__ = [
    "ALL_ENGINES",
    "AccessPathChoice",
    "Aggregate",
    "BinOp",
    "COLUMNAR",
    "CPU",
    "Col",
    "ColumnarEngine",
    "Const",
    "CpuEngine",
    "DEGRADED",
    "DegradedEngine",
    "ENGINES",
    "Engine",
    "ExecutionPlan",
    "ExecutionReport",
    "Expr",
    "INDEX",
    "IndexEngine",
    "Join",
    "Label",
    "LeafRelation",
    "PIM",
    "PimEngine",
    "Processor",
    "Projection",
    "Query",
    "QueryExecutor",
    "QueryResult",
    "RELATIONAL_MEMORY_BENCHMARK",
    "RME",
    "Relation",
    "RelationVisitor",
    "RmeEngine",
    "Selection",
    "Transfer",
    "choose_access_path",
    "engine_by_name",
    "engine_names",
    "explain_placement",
    "parse_query",
    "parse_relation",
    "print_tree",
    "q1",
    "q2",
    "q3",
    "q4",
    "q5",
    "q6",
    "q7",
    "relation_from_query",
    "reroot_degraded",
    "to_query",
]
