"""The query layer: expressions, operators, the Relational Memory
Benchmark queries (Q1-Q7), an executor that prices queries over any access
path, and a cost-based access-path optimizer.

The executor follows the paper's philosophy (Section 3): the hardware only
*reorganises* data; all actual computation — selection, aggregation,
group-by — runs on the CPU, priced as per-element compute on top of the
memory access pattern.
"""

from .expr import BinOp, Col, Const, Expr
from .executor import QueryExecutor, QueryResult
from .optimizer import AccessPathChoice, choose_access_path
from .sql import parse_query
from .queries import (
    Query,
    RELATIONAL_MEMORY_BENCHMARK,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
)

__all__ = [
    "AccessPathChoice",
    "BinOp",
    "Col",
    "Const",
    "Expr",
    "Query",
    "QueryExecutor",
    "QueryResult",
    "RELATIONAL_MEMORY_BENCHMARK",
    "choose_access_path",
    "parse_query",
    "q1",
    "q2",
    "q3",
    "q4",
    "q5",
    "q6",
    "q7",
]
