"""Physical operators: filter, project, aggregate, group-by.

Pure-Python implementations the executor uses to compute *functional*
query answers (the timing comes from the simulated memory system, not
from Python's speed). Q7's standard deviation is deliberately two-pass —
mean first, then squared deviations — mirroring Eq. (7) and the access
pattern the paper times.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import QueryError
from .expr import Expr


def filter_rows(
    rows: Iterable[Dict[str, Any]], predicate: Optional[Expr]
) -> List[Dict[str, Any]]:
    """Apply a predicate; ``None`` keeps everything."""
    if predicate is None:
        return list(rows)
    return [row for row in rows if predicate.eval(row)]


def project(rows: Iterable[Dict[str, Any]], columns: Sequence[str]) -> List[Tuple]:
    """Materialise the projection as row-ordered tuples."""
    return [tuple(row[c] for c in columns) for row in rows]


def agg_sum(values: Sequence[Any]) -> Any:
    """SUM over the input values."""
    return sum(values)


def agg_count(values: Sequence[Any]) -> int:
    """COUNT of the input values."""
    return len(values)


def agg_avg(values: Sequence[Any]) -> float:
    """AVG over a non-empty input."""
    if not values:
        raise QueryError("AVG over an empty input")
    return sum(values) / len(values)


def agg_std(values: Sequence[Any]) -> float:
    """Two-pass sample standard deviation (Eq. 7 of the paper)."""
    n = len(values)
    if n < 2:
        raise QueryError("STD needs at least two values")
    mean = sum(values) / n
    return math.sqrt(sum((x - mean) ** 2 for x in values) / (n - 1))


def agg_min(values: Sequence[Any]) -> Any:
    """MIN over a non-empty input."""
    if not values:
        raise QueryError("MIN over an empty input")
    return min(values)


def agg_max(values: Sequence[Any]) -> Any:
    """MAX over a non-empty input."""
    if not values:
        raise QueryError("MAX over an empty input")
    return max(values)


AGGREGATES: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "sum": agg_sum,
    "count": agg_count,
    "avg": agg_avg,
    "std": agg_std,
    "min": agg_min,
    "max": agg_max,
}


def aggregate(name: str, values: Sequence[Any]) -> Any:
    """Apply the named aggregate to the values."""
    try:
        func = AGGREGATES[name]
    except KeyError:
        raise QueryError(f"unknown aggregate {name!r}") from None
    return func(values)


def hash_join(
    lhs_rows: Sequence[Dict[str, Any]],
    rhs_rows: Sequence[Dict[str, Any]],
    on: str,
) -> List[Dict[str, Any]]:
    """Equi-join two row lists: build from the left, probe with the right.

    The single definition both the CPU join and the PIM join's
    functional answer share: output rows follow the probe side's order
    (with left-side build order breaking ties), and right-side values
    win on shared column names — so every engine produces an identical
    row list by construction.
    """
    build: Dict[Any, List[Dict[str, Any]]] = {}
    for row in lhs_rows:
        build.setdefault(row[on], []).append(row)
    joined: List[Dict[str, Any]] = []
    for row in rhs_rows:
        for match in build.get(row[on], ()):
            merged = dict(match)
            merged.update(row)
            joined.append(merged)
    return joined


def group_aggregate(
    rows: Iterable[Dict[str, Any]],
    group_col: str,
    agg_name: str,
    agg_expr: Expr,
) -> Dict[Any, Any]:
    """GROUP BY ``group_col`` with one aggregate; returns {key: value}."""
    buckets: Dict[Any, List[Any]] = {}
    for row in rows:
        buckets.setdefault(row[group_col], []).append(agg_expr.eval(row))
    return {key: aggregate(agg_name, values) for key, values in buckets.items()}
