"""A cost-based access-path optimizer.

Section 4 of the paper ("Indexes & Execution Strategies") sketches the
payoff of native dual-layout access: "at runtime, the query optimizer can
decide to execute one query with indexes and another query with columns,
alternating between a row-at-a-time and column-at-a-time execution
strategy depending on what is the best fit for each query."

This module implements that decision for scans: given a query and a
loaded table, it prices every available access path with the analytical
model and picks the cheapest, reporting the estimates so callers (and the
advisor example) can show their work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.access_path import AccessPath
from ..core.relmem import LoadedTable
from ..errors import QueryError
from ..model.analytical import AnalyticalModel
from ..rme.designs import DesignParams, MLP
from .queries import HASH_BUILD_NS, HASH_PROBE_NS, Query


@dataclass(frozen=True)
class AccessPathChoice:
    """The optimizer's decision and its supporting estimates."""

    query: str
    best: AccessPath
    estimates_ns: Dict[AccessPath, float]
    reason: str

    def speedup_vs(self, other: AccessPath) -> float:
        """Estimated speedup of the chosen path over ``other``."""
        if other not in self.estimates_ns:
            raise QueryError(f"no estimate for path {other}")
        return self.estimates_ns[other] / self.estimates_ns[self.best]


def choose_access_path(
    query: Query,
    loaded: LoadedTable,
    design: DesignParams = MLP,
    has_columnar_copy: bool = False,
    rme_hot: bool = False,
    selectivity: float = 1.0,
    index=None,
    model: Optional[AnalyticalModel] = None,
) -> AccessPathChoice:
    """Pick the cheapest access path for a scan query.

    ``has_columnar_copy`` only enables the columnar estimate — the copy
    costs storage and maintenance the optimizer does not price here.
    ``rme_hot`` prices the RME path with the projection already buffered
    (e.g. a repeated query on the same column group). ``index`` enables
    the B+-tree estimate when the predicate imposes a range on the
    indexed column; with a selective predicate the index wins, otherwise
    the packed scans do — the per-query alternation Section 4 sketches.
    """
    from .expr import key_range

    model = model or AnalyticalModel()
    schema = loaded.schema
    offset, width = schema.covering_group(query.columns())
    n_rows = loaded.table.n_rows
    compute = query.row_compute_ns(selectivity)
    passes = query.passes

    estimates: Dict[AccessPath, float] = {
        AccessPath.DIRECT_ROW: model.direct_ns(
            schema.row_size, width, n_rows, compute
        )
        + (passes - 1)
        * model.direct_repeat_ns(schema.row_size, width, n_rows, compute)
    }
    if has_columnar_copy:
        estimates[AccessPath.COLUMNAR] = passes * model.columnar_ns(
            width, n_rows, compute
        )
    if rme_hot:
        estimates[AccessPath.RME] = passes * model.rme_hot_ns(width, n_rows, compute)
    else:
        # First pass transforms; any further passes run hot.
        cold = model.rme_cold_ns(
            schema.row_size, width, n_rows, compute, design, offset
        )
        hot = model.rme_hot_ns(width, n_rows, compute)
        estimates[AccessPath.RME] = cold + (passes - 1) * hot

    if (
        index is not None
        and query.predicate is not None
        and key_range(query.predicate, index.column) is not None
    ):
        matches = max(1, int(round(selectivity * n_rows)))
        touched_leaves = max(1, -(-matches // index.fanout))
        estimates[AccessPath.INDEX] = passes * model.index_ns(
            index.height, touched_leaves, matches, index.node_bytes
        )

    # Bank-level PIM: only for queries the in-bank datapath can evaluate,
    # and only over plain physical tables (the banks cannot apply MVCC
    # visibility). Closed-form, same constants as the executed scan.
    if loaded.versioned is None:
        from ..pim import estimate_query_ns, supports_query

        if not supports_query(query):
            estimates[AccessPath.PIM] = estimate_query_ns(
                query, schema, n_rows, selectivity
            )

    best = min(estimates, key=estimates.get)
    reason = _explain(query, best, width, schema.row_size)
    return AccessPathChoice(query.name, best, estimates, reason)


def choose_join_path(
    on: str,
    lhs_query: Query,
    lhs_loaded: LoadedTable,
    rhs_query: Query,
    rhs_loaded: LoadedTable,
    lhs_selectivity: float = 1.0,
    rhs_selectivity: float = 1.0,
    model: Optional[AnalyticalModel] = None,
) -> AccessPathChoice:
    """Pick the cheapest engine for a two-table equi-join on ``on``.

    The CPU path prices two measured row scans plus a per-row hash
    build/probe surcharge; the PIM path (only for joins the banks can
    evaluate — integer keys, projected on both sides, no MVCC) prices
    the in-bank partitioned build and probe with only matched row-id
    pairs crossing the AXI boundary. The two candidates mirror exactly
    what :meth:`repro.query.processor.Processor.plan_join` would
    execute.
    """
    model = model or AnalyticalModel()
    sides = (
        (lhs_query, lhs_loaded, lhs_selectivity),
        (rhs_query, rhs_loaded, rhs_selectivity),
    )
    cpu_ns = 0.0
    for query, loaded, sel in sides:
        schema = loaded.schema
        _, width = schema.covering_group(query.columns())
        cpu_ns += model.direct_ns(
            schema.row_size, width, loaded.table.n_rows,
            query.row_compute_ns(sel),
        )
    lhs_kept = int(round(lhs_selectivity * lhs_loaded.table.n_rows))
    rhs_kept = int(round(rhs_selectivity * rhs_loaded.table.n_rows))
    cpu_ns += HASH_BUILD_NS * lhs_kept + HASH_PROBE_NS * rhs_kept
    estimates: Dict[AccessPath, float] = {AccessPath.DIRECT_ROW: cpu_ns}

    if lhs_loaded.versioned is None and rhs_loaded.versioned is None:
        from ..pim import estimate_join_ns, supports_join

        if not supports_join(on, lhs_query, rhs_query):
            estimates[AccessPath.PIM] = estimate_join_ns(
                on,
                lhs_query, lhs_loaded.schema, lhs_loaded.table.n_rows,
                rhs_query, rhs_loaded.schema, rhs_loaded.table.n_rows,
                lhs_selectivity=lhs_selectivity,
                rhs_selectivity=rhs_selectivity,
            )

    best = min(estimates, key=estimates.get)
    if best is AccessPath.PIM:
        reason = ("few rows survive the side filters; hashing them across "
                  "the banks and shipping only matched row-id pairs beats "
                  "streaming both tables")
    else:
        reason = ("enough rows survive that two streaming row scans amortise "
                  "better than the per-bank partition and probe")
    return AccessPathChoice(
        f"{lhs_query.name}⋈{rhs_query.name}", best, estimates, reason
    )


def _explain(query: Query, best: AccessPath, width: int, row_size: int) -> str:
    projectivity = width / row_size
    if best is AccessPath.INDEX:
        return "the predicate is selective enough that probing the B+-tree " \
               "and fetching the few matches beats any scan"
    if best is AccessPath.PIM:
        if query.aggregate is not None:
            return ("the banks can fold the aggregate locally, so only a "
                    "register line ever crosses the AXI boundary")
        return ("few rows survive the predicate; filtering at the banks and "
                "point-fetching the survivors beats streaming everything")
    if best is AccessPath.DIRECT_ROW:
        return (
            f"projectivity {projectivity:.0%} is high enough that moving whole "
            "rows is no worse than routing through the PL"
        )
    if best is AccessPath.COLUMNAR:
        return "a maintained columnar copy exists and packed streaming wins"
    detail = "buffered projection streams from BRAM" if query.passes > 1 else (
        f"only {projectivity:.0%} of each row is useful; on-the-fly projection "
        "skips the rest"
    )
    return detail
