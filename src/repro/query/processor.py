"""The visitor-based Processor: plans and executes multi-engine trees.

The :class:`Processor` is the execution half of the relational-algebra
IR (:mod:`repro.query.relation`). It does three jobs:

1. **Placement** (:meth:`Processor.plan`): given a benchmark
   :class:`~repro.query.queries.Query` and a loaded table, price every
   available engine with the cost-based optimizer
   (:func:`repro.query.optimizer.choose_access_path`) and build the
   engine-annotated tree — the column-group fetch on the winning
   engine, explicit :class:`~repro.query.relation.Transfer` nodes at
   the boundaries, compute operators on the CPU.
2. **Execution** (:meth:`Processor.execute`): walk a placed tree with a
   visitor, compile it back onto the measured scan machinery
   (:class:`~repro.query.executor.QueryExecutor`) and return the usual
   :class:`~repro.query.executor.QueryResult`. Because the engines
   delegate to exactly the same measured primitives, answers and cycle
   counts are bit-identical to the pre-IR pipeline (pinned by
   ``tests/test_ir_equivalence.py``).
3. **Degradation**: when the RME or the PIM banks raise an
   unrecoverable ``FaultError`` and the recovery policy allows a CPU
   fallback, the executor degrades
   transparently; the processor then *re-roots* the fetch subtree onto
   :data:`~repro.query.engines.DEGRADED` so the executed tree in
   :attr:`Processor.last_report` records what actually happened — same
   semantics as before the refactor, now visible in the plan.

The bridge functions :func:`relation_from_query` / :func:`to_query`
convert between the benchmark ``Query`` description and canonical IR
trees; they are exact inverses for every benchmark template, which is
what keeps the equivalence suite byte-level.

>>> from repro.query.queries import q2
>>> print(explain_placement(q2(k=0)))
Plan[Q2]: SELECT A1 FROM S WHERE A2 > 0
└─ Projection[A1] @cpu
   └─ Selection[(Col(A2) > Const(0))] @cpu
      └─ Transfer[rme → cpu]
         └─ Projection[A1,A2] @rme
            └─ Transfer[cpu → rme]
               └─ Leaf[S] @cpu
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.access_path import AccessPath
from ..core.relmem import (
    LoadedColumnGroup,
    LoadedIndex,
    LoadedTable,
    RelationalMemorySystem,
)
from ..errors import QueryError
from . import ops
from .engines import (
    COLUMNAR,
    CPU,
    DEGRADED,
    INDEX,
    PIM,
    RME,
    Engine,
)
from .executor import JoinScan, QueryExecutor, QueryResult
from .optimizer import AccessPathChoice, choose_access_path, choose_join_path
from .queries import HASH_BUILD_NS, HASH_PROBE_NS, Query
from .relation import (
    Aggregate,
    Join,
    Label,
    LeafRelation,
    Projection,
    Relation,
    RelationVisitor,
    Selection,
    Transfer,
    print_tree,
)

#: AccessPath -> the engine that serves it (planner direction).
_PATH_ENGINES = {
    AccessPath.DIRECT_ROW: CPU,
    AccessPath.COLUMNAR: COLUMNAR,
    AccessPath.RME: RME,
    AccessPath.INDEX: INDEX,
    AccessPath.PIM: PIM,
}


def relation_from_query(
    query: Query,
    engine: Engine = CPU,
    table: str = "S",
    schema_columns: Optional[Sequence[str]] = None,
    fetch_columns: Optional[Sequence[str]] = None,
) -> Label:
    """Build the canonical IR tree for a single-table benchmark query.

    The shape is always ``Label → [output π] → [γ] → [σ] → fetch π →
    Leaf``, with the fetch projection placed on ``engine`` behind
    explicit transfers when the engine is not the CPU. ``fetch_columns``
    widens the physically fetched column group beyond the query's
    footprint (the figure sweeps do this to control projectivity).

    The PIM engine is the one placement where *compute* leaves the CPU:
    selection and aggregation happen inside the DRAM banks, so the
    ``σ``/``γ`` operators sit below the ``Transfer[pim → cpu]`` — the
    bank boundary — and only the output projection stays on the CPU.
    Queries the banks cannot evaluate (see
    :func:`repro.pim.predicate.supports_query`) raise ``QueryError``
    when pinned there.

    >>> from repro.query.queries import q4
    >>> print(relation_from_query(q4()))
    Q4:γ[sum(Col(A1))](π[A1](S))
    """
    if query.aggregate is None and query.passes != 1:
        raise QueryError(
            f"{query.name}: multi-pass non-aggregate queries are not "
            "representable in the IR"
        )
    needed = tuple(query.columns())
    fetched = tuple(fetch_columns) if fetch_columns is not None else needed
    missing = [c for c in needed if c not in fetched]
    if missing:
        raise QueryError(
            f"{query.name}: fetch columns {list(fetched)} do not cover "
            f"{missing}"
        )
    leaf = LeafRelation(
        table,
        tuple(schema_columns) if schema_columns is not None else None,
    )
    source: Relation = leaf.transfer(engine)
    fetch: Relation = Projection(target=source, projected=fetched)
    if engine == PIM:
        from ..pim import supports_query

        reason = supports_query(query)
        if reason:
            raise QueryError(f"{query.name}: not PIM-evaluable: {reason}")
        body = fetch
        if query.predicate is not None:
            body = body.select(query.predicate)
        if query.aggregate is not None:
            body = body.aggregate(query.aggregate, query.agg_expr,
                                  group_by=query.group_by,
                                  passes=query.passes)
        body = body.transfer(CPU)
        if query.aggregate is None and tuple(query.select) != fetched:
            body = Projection(target=body, projected=tuple(query.select))
        return body.label(query.name, query.sql)
    body = fetch.transfer(CPU)
    if query.predicate is not None:
        body = body.select(query.predicate)
    if query.aggregate is not None:
        body = body.aggregate(query.aggregate, query.agg_expr,
                              group_by=query.group_by, passes=query.passes)
    elif tuple(query.select) != fetched:
        body = Projection(target=body, projected=tuple(query.select))
    return body.label(query.name, query.sql)


def _join_side(query: Query, table: str,
               schema_columns: Optional[Sequence[str]],
               engine: Engine) -> Relation:
    """One join input: fetch projection (+ optional selection) on ``engine``."""
    if query.aggregate is not None or query.group_by is not None:
        raise QueryError("aggregates below a join are not executable")
    if query.passes != 1:
        raise QueryError("multi-pass scans below a join are not executable")
    leaf = LeafRelation(
        table, tuple(schema_columns) if schema_columns is not None else None
    )
    source: Relation = leaf if engine == CPU else leaf.transfer(engine)
    fetch: Relation = Projection(target=source,
                                 projected=tuple(query.columns()))
    if query.predicate is not None:
        fetch = fetch.select(query.predicate)
    return fetch


def join_relation(
    on: str,
    lhs_query: Query,
    rhs_query: Query,
    engine: Engine = CPU,
    lhs_table: str = "R",
    rhs_table: str = "T",
    lhs_schema_columns: Optional[Sequence[str]] = None,
    rhs_schema_columns: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    sql: str = "",
) -> Label:
    """Build the canonical IR tree for a two-table equi-join.

    Each side is a fetch projection (plus optional selection) placed on
    ``engine``; the Join runs where its inputs live, and a final
    ``Transfer`` brings the result back to the CPU when the join ran
    elsewhere. For the PIM engine the side filters, the hash build and
    the probe all happen at the banks — only matched row-id pairs cross
    the ``Transfer[pim → cpu]`` boundary — so joins the banks cannot
    evaluate (see :func:`repro.pim.predicate.supports_join`) raise
    ``QueryError`` when pinned there.

    >>> from repro.query.queries import Query
    >>> lhs = Query(name="dim", sql="", select=("K", "D1"))
    >>> rhs = Query(name="fact", sql="", select=("K", "A1"))
    >>> print(join_relation("K", lhs, rhs))
    dim⋈fact:(π[K,D1](R) ⋈[K] π[K,A1](T))
    """
    if engine == PIM:
        from ..pim import supports_join

        reason = supports_join(on, lhs_query, rhs_query)
        if reason:
            raise QueryError(f"join not PIM-evaluable: {reason}")
    tree = _join_side(lhs_query, lhs_table, lhs_schema_columns, engine).join(
        _join_side(rhs_query, rhs_table, rhs_schema_columns, engine), on=on
    )
    if engine != CPU:
        tree = tree.transfer(CPU)
    label = name or f"{lhs_query.name}⋈{rhs_query.name}"
    return tree.label(label, sql)


class _QueryCompiler(RelationVisitor):
    """Compiles a canonical single-table tree back into a ``Query``.

    Walks root-to-leaf recording each operator once; rejects shapes the
    measured executor cannot price (selection above aggregation, two
    aggregates, joins — :meth:`Processor.execute` special-cases joins
    before compiling).
    """

    def __init__(self) -> None:
        self.name = "adhoc"
        self.sql = ""
        self.select: Optional[Tuple[str, ...]] = None
        self.predicate = None
        self.aggregate: Optional[str] = None
        self.agg_expr = None
        self.group_by: Optional[str] = None
        self.passes = 1
        self.fetch: Optional[Projection] = None
        self.scan_engine: Engine = CPU
        self.leaf: Optional[LeafRelation] = None

    # -- traversal ----------------------------------------------------------------
    def visit_label(self, node: Label) -> None:
        """Record the query identity and recurse."""
        self.name, self.sql = node.name, node.sql
        node.target.accept(self)

    def visit_transfer(self, node: Transfer) -> None:
        """Transfers are placement, not semantics: recurse."""
        node.target.accept(self)

    def visit_aggregate(self, node: Aggregate) -> None:
        """Record the (single) aggregate and recurse."""
        if self.aggregate is not None:
            raise QueryError("nested aggregates are not executable")
        if self.predicate is not None:
            raise QueryError("selection above an aggregate (HAVING) is not "
                             "executable")
        self.aggregate, self.agg_expr = node.func, node.expr
        self.group_by, self.passes = node.group_by, node.passes
        node.target.accept(self)

    def visit_selection(self, node: Selection) -> None:
        """Record the (single) predicate and recurse."""
        if self.predicate is not None:
            raise QueryError("conjoin predicates into one Selection "
                             "expression instead of stacking Selections")
        self.predicate = node.predicate
        node.target.accept(self)

    def visit_projection(self, node: Projection) -> None:
        """Distinguish the fetch projection from an output projection."""
        below = node.target
        while isinstance(below, Transfer):
            below = below.target
        if isinstance(below, LeafRelation):
            self.fetch = node
            self.scan_engine = node.engine
            below.accept(self)
            return
        if self.fetch is not None or self.select is not None:
            raise QueryError("more than one output projection")
        if self.aggregate is not None or self.predicate is not None:
            raise QueryError("projection between compute operators is not "
                             "executable")
        self.select = node.projected
        node.target.accept(self)

    def visit_leaf(self, node: LeafRelation) -> None:
        """Record the scanned table."""
        self.leaf = node

    def visit_join(self, node: Join) -> None:
        """Joins are executed structurally, never compiled to a Query."""
        raise QueryError("Join trees execute via Processor.execute with "
                         "table bindings, not via to_query")

    # -- assembly ----------------------------------------------------------------
    def compile(self, relation: Relation) -> Query:
        """Run the walk and assemble the equivalent ``Query``."""
        relation.accept(self)
        if self.leaf is None:
            raise QueryError(f"no stored table under {relation}")
        if self.aggregate is not None:
            select: Tuple[str, ...] = ()
        elif self.select is not None:
            select = self.select
        elif self.fetch is not None:
            select = self.fetch.projected
        else:
            select = self.leaf.columns
            if not select:
                raise QueryError(f"cannot infer columns for {relation}")
        query = Query(
            name=self.name,
            sql=self.sql,
            select=select,
            predicate=self.predicate,
            aggregate=self.aggregate,
            agg_expr=self.agg_expr,
            group_by=self.group_by,
            passes=self.passes,
        )
        if self.fetch is not None:
            uncovered = [c for c in query.columns()
                         if c not in self.fetch.projected]
            if uncovered:
                raise QueryError(
                    f"{self.name}: fetch projection {list(self.fetch.projected)} "
                    f"does not cover {uncovered}"
                )
        return query


def to_query(relation: Relation) -> Query:
    """Compile a canonical single-table tree into the equivalent ``Query``.

    Exact inverse of :func:`relation_from_query`: expression nodes are
    carried by reference, so ``to_query(relation_from_query(q)) == q``
    holds structurally for every benchmark template.

    >>> from repro.query.queries import q5
    >>> q = q5(k=0)
    >>> to_query(relation_from_query(q)) == q
    True
    """
    return _QueryCompiler().compile(relation)


def scan_engine(relation: Relation) -> Engine:
    """The engine serving ``relation``'s column-group fetch.

    For join trees this is the engine the Join node executes on (both
    inputs live there by construction — ``Join.__post_init__`` enforces
    it).

    >>> from repro.query.queries import q1
    >>> from repro.query.engines import RME
    >>> scan_engine(relation_from_query(q1(), engine=RME)).name
    'rme'
    """
    node = relation
    while isinstance(node, (Label, Transfer, Selection, Projection,
                            Aggregate)):
        node = node.target
    if isinstance(node, Join):
        return node.engine
    compiler = _QueryCompiler()
    relation.accept(compiler)
    return compiler.scan_engine


def reroot_degraded(relation: Relation) -> Relation:
    """Re-root the fetch subtree onto the degraded CPU engine.

    Applied by the processor after the executor's fault fallback fired:
    the returned tree describes the execution that actually happened —
    the RME subtree replaced by the staleness-free CPU row scan under
    the :data:`~repro.query.engines.DEGRADED` identity.

    >>> from repro.query.queries import q1
    >>> from repro.query.engines import RME
    >>> print(reroot_degraded(relation_from_query(q1(), engine=RME)))
    Q1:[degraded→cpu](π[A1]([cpu→degraded](S)))
    """
    compiler = _QueryCompiler()
    query = compiler.compile(relation)
    leaf = compiler.leaf
    return relation_from_query(
        query,
        engine=DEGRADED,
        table=leaf.name,
        schema_columns=leaf.schema_columns,
        fetch_columns=compiler.fetch.projected if compiler.fetch else None,
    )


def reroot_degraded_join(relation: Relation) -> Relation:
    """Re-root both join inputs onto the degraded CPU engine.

    The join-tree analogue of :func:`reroot_degraded`: after an
    unrecoverable in-bank fault fell back to software, the executed
    tree shows both side fetches (and the join between them) under the
    :data:`~repro.query.engines.DEGRADED` identity, with the result
    transferred back to the CPU.
    """
    name, sql = ("join", "")
    node: Relation = relation
    if isinstance(relation, Label):
        name, sql = relation.name, relation.sql
        node = relation.target
    above: List[Relation] = []
    while not isinstance(node, Join):
        above.append(node)
        node = node.target
    sides = []
    for side in (node.lhs, node.rhs):
        compiler = _QueryCompiler()
        query = compiler.compile(side)
        sides.append(_join_side(query, compiler.leaf.name,
                                compiler.leaf.schema_columns, DEGRADED))
    tree: Relation = sides[0].join(sides[1], on=node.on).transfer(CPU)
    for op in reversed(above):
        if isinstance(op, Selection):
            tree = tree.select(op.predicate)
        elif isinstance(op, Aggregate):
            tree = tree.aggregate(op.func, op.expr, group_by=op.group_by,
                                  passes=op.passes)
        elif isinstance(op, Projection):
            tree = Projection(target=tree, projected=op.projected)
        # Transfers above the join are placement only; the new tree
        # carries its own [degraded → cpu] boundary.
    return tree.label(name, sql)


@dataclass(frozen=True)
class ExecutionPlan:
    """A placed tree plus the optimizer decision that shaped it."""

    relation: Relation
    query: Query
    choice: Optional[AccessPathChoice] = None

    @property
    def engine(self) -> Engine:
        """The engine the plan placed the column-group fetch on."""
        return scan_engine(self.relation)

    def explain(self) -> str:
        """The engine-annotated plan tree (``--explain`` output)."""
        return print_tree(self.relation)


@dataclass(frozen=True)
class ExecutionReport:
    """What one processor execution planned, did, and measured."""

    planned: Relation
    executed: Relation
    result: QueryResult

    @property
    def degraded(self) -> bool:
        """True when a fault re-rooted the fetch onto the CPU engine."""
        return self.executed is not self.planned

    def explain(self) -> str:
        """The executed tree — re-rooted subtrees show ``@degraded``."""
        return print_tree(self.executed)


class Processor:
    """Plans and executes relation trees on one simulated platform.

    The processor owns no policy of its own: placement defers to the
    cost model and execution defers to the measured scan machinery, so
    going through the IR is free of timing drift by construction.

    >>> import random
    >>> from repro import RelationalMemorySystem, RowTable, uniform_schema
    >>> from repro.query.queries import q4
    >>> table = RowTable("S", uniform_schema(4, 4))
    >>> rng = random.Random(7)
    >>> for _ in range(64):
    ...     _ = table.append([rng.randint(-100, 100) for _ in range(4)])
    >>> system = RelationalMemorySystem()
    >>> loaded = system.load_table(table)
    >>> processor = Processor(system)
    >>> report = processor.run(q4(), loaded)
    >>> report.result.value == sum(table.column_values("A1"))
    True
    >>> report.result.elapsed_ns > 0
    True
    """

    def __init__(self, system: RelationalMemorySystem):
        self.system = system
        self.executor = QueryExecutor(system)
        #: The :class:`ExecutionReport` of the most recent execution.
        self.last_report: Optional[ExecutionReport] = None

    # -- planning -----------------------------------------------------------------
    def plan(
        self,
        query: Query,
        loaded: LoadedTable,
        columnar: Optional[LoadedColumnGroup] = None,
        index: Optional[LoadedIndex] = None,
        hot: bool = False,
        selectivity: float = 1.0,
        engine: Optional[Engine] = None,
        fetch_columns: Optional[Sequence[str]] = None,
    ) -> ExecutionPlan:
        """Choose an engine for the fetch and build the placed tree.

        With ``engine`` given, placement is pinned (no costing); else
        the cost model prices every available engine — the CPU row scan
        always, the columnar copy and the index only when supplied,
        RME always (cold first pass unless ``hot``) — and the cheapest
        wins the fetch subtree.
        """
        choice = None
        if engine is None:
            choice = choose_access_path(
                query,
                loaded,
                design=self.system.design,
                has_columnar_copy=columnar is not None,
                rme_hot=hot,
                selectivity=selectivity,
                index=index.index if index is not None else None,
            )
            engine = _PATH_ENGINES[choice.best]
        relation = relation_from_query(
            query,
            engine=engine,
            table=loaded.name,
            schema_columns=tuple(loaded.schema.names),
            fetch_columns=fetch_columns,
        )
        return ExecutionPlan(relation=relation, query=query, choice=choice)

    def plan_join(
        self,
        on: str,
        lhs_query: Query,
        lhs_loaded: LoadedTable,
        rhs_query: Query,
        rhs_loaded: LoadedTable,
        engine: Optional[Engine] = None,
        lhs_selectivity: float = 1.0,
        rhs_selectivity: float = 1.0,
        name: Optional[str] = None,
        sql: str = "",
    ) -> ExecutionPlan:
        """Choose an engine for a two-table equi-join and build its tree.

        With ``engine`` given, placement is pinned (no costing); else
        :func:`~repro.query.optimizer.choose_join_path` prices the CPU
        hash join against the in-bank partitioned join and the cheapest
        wins. Execute the plan with ``tables={leaf: loaded, ...}``
        bindings.
        """
        choice = None
        if engine is None:
            choice = choose_join_path(
                on, lhs_query, lhs_loaded, rhs_query, rhs_loaded,
                lhs_selectivity=lhs_selectivity,
                rhs_selectivity=rhs_selectivity,
            )
            engine = _PATH_ENGINES[choice.best]
        relation = join_relation(
            on, lhs_query, rhs_query, engine=engine,
            lhs_table=lhs_loaded.name, rhs_table=rhs_loaded.name,
            lhs_schema_columns=tuple(lhs_loaded.schema.names),
            rhs_schema_columns=tuple(rhs_loaded.schema.names),
            name=name, sql=sql,
        )
        node: Relation = relation.target
        while not isinstance(node, Join):
            node = node.target
        query = Query(name=relation.name, sql=sql or relation.sql,
                      select=tuple(node.columns))
        return ExecutionPlan(relation=relation, query=query, choice=choice)

    def explain(self, relation: Relation) -> str:
        """Render ``relation`` as the engine-annotated plan tree."""
        return print_tree(relation)

    # -- execution ----------------------------------------------------------------
    def execute(
        self,
        relation: Relation,
        loaded: Optional[LoadedTable] = None,
        var=None,
        columnar: Optional[LoadedColumnGroup] = None,
        index: Optional[LoadedIndex] = None,
        tables: Optional[Dict[str, LoadedTable]] = None,
        flush: bool = True,
    ) -> QueryResult:
        """Execute a placed tree and return the measured result.

        Bindings supply the storage objects each engine scans: the
        ``loaded`` row table (CPU / degraded / index), the ``columnar``
        copy, the ephemeral ``var`` (RME), or — for join trees — the
        ``tables`` map from leaf name to loaded table. The executed
        tree (with any fault re-rooting applied) lands in
        :attr:`last_report`.
        """
        if self._join_below(relation):
            return self._execute_join(relation, tables or {}, flush)
        query = to_query(relation)
        engine = scan_engine(relation)
        executed = relation
        if engine == RME:
            if var is None:
                raise QueryError("an RME-placed tree needs an ephemeral "
                                 "variable binding (var=...)")
            result = self.executor.run_rme(query, var, flush)
            if result.state == "degraded":
                executed = reroot_degraded(relation)
        elif engine == PIM:
            if loaded is None:
                raise QueryError("a PIM-placed tree needs a loaded= binding")
            result = self.executor.run_pim(query, loaded, flush)
            if result.state == "degraded":
                executed = reroot_degraded(relation)
        elif engine == COLUMNAR:
            if loaded is None or columnar is None:
                raise QueryError("a columnar-placed tree needs loaded= and "
                                 "columnar= bindings")
            result = self.executor.run_columnar(query, loaded, columnar, flush)
        elif engine == INDEX:
            if loaded is None or index is None:
                raise QueryError("an index-placed tree needs loaded= and "
                                 "index= bindings")
            result = self.executor.run_index(query, loaded, index, flush)
        else:  # CPU or DEGRADED: the row-store scan
            if loaded is None:
                raise QueryError("a CPU-placed tree needs a loaded= binding")
            result = self.executor.run_direct(query, loaded, flush)
        self.last_report = ExecutionReport(planned=relation, executed=executed,
                                           result=result)
        return result

    def run(
        self,
        query: Query,
        loaded: LoadedTable,
        columnar: Optional[LoadedColumnGroup] = None,
        index: Optional[LoadedIndex] = None,
        hot: bool = False,
        selectivity: float = 1.0,
        engine: Optional[Engine] = None,
        var=None,
        flush: bool = True,
    ) -> ExecutionReport:
        """Plan, bind, and execute in one call.

        When the plan lands on the RME and no ephemeral variable is
        supplied, one is registered for the fetch columns (and warmed
        when ``hot``). Returns the full :class:`ExecutionReport`.
        """
        plan = self.plan(query, loaded, columnar=columnar, index=index,
                         hot=hot, selectivity=selectivity, engine=engine)
        if plan.engine == RME and var is None:
            var = self.system.register_var(
                loaded, list(query.columns()), allow_noncontiguous=True
            )
            if hot:
                self.system.warm_up(var)
                self.system.flush_caches()
        self.execute(plan.relation, loaded=loaded, var=var,
                     columnar=columnar, index=index, flush=flush)
        return self.last_report

    # -- joins --------------------------------------------------------------------
    @staticmethod
    def _join_below(node: Relation) -> bool:
        """True when a Join sits under a chain of unary operators."""
        while isinstance(node, (Selection, Projection, Aggregate, Transfer,
                                Label)):
            node = node.target
        return isinstance(node, Join)

    def _side_rows(
        self, side: Relation, tables: Dict[str, LoadedTable], flush: bool
    ) -> Tuple[List[Dict[str, Any]], QueryResult]:
        """Scan one join input and return its rows as dicts."""
        compiler = _QueryCompiler()
        query = compiler.compile(side)
        if compiler.scan_engine not in (CPU, DEGRADED):
            raise QueryError(
                f"join inputs execute on the CPU engine for now; got "
                f"{compiler.scan_engine.name} (transfer the subtree to CPU)"
            )
        name = compiler.leaf.name
        if name not in tables:
            raise QueryError(f"join executes with tables={{...}}; no binding "
                             f"for leaf {name!r}")
        if query.aggregate is not None:
            raise QueryError("aggregates below a join are not executable")
        result = self.executor.run_direct(query, tables[name], flush)
        columns = query.select
        rows = [dict(zip(columns, values)) for values in result.value]
        return rows, result

    def _pim_join_scan(
        self, node: Join, tables: Dict[str, LoadedTable], flush: bool
    ) -> JoinScan:
        """Compile both PIM-placed join inputs and run them at the banks."""
        queries: List[Query] = []
        loadeds: List[LoadedTable] = []
        for side in (node.lhs, node.rhs):
            compiler = _QueryCompiler()
            query = compiler.compile(side)
            if compiler.scan_engine != PIM:
                raise QueryError(
                    f"a PIM join needs both inputs on the PIM engine; got "
                    f"{compiler.scan_engine.name}"
                )
            name = compiler.leaf.name
            if name not in tables:
                raise QueryError(f"join executes with tables={{...}}; no "
                                 f"binding for leaf {name!r}")
            queries.append(query)
            loadeds.append(tables[name])
        return self.executor.run_pim_join(node.on, queries[0], loadeds[0],
                                          queries[1], loadeds[1], flush)

    def _execute_join(
        self, relation: Relation, tables: Dict[str, LoadedTable], flush: bool
    ) -> QueryResult:
        """Join two scanned sides, then apply the operators above.

        The functional answer follows the usual split: rows come from
        the stored tables (via the one shared :func:`ops.hash_join`
        definition), the timing from the engine the Join node sits on —
        two measured row scans plus a per-row hash surcharge on the
        CPU, or the in-bank partition/build/probe bill on the PIM
        engine. An unrecoverable PIM fault degrades like any other PIM
        scan: the software join's rows, the wasted simulated time on
        the bill, and the executed tree re-rooted onto ``@degraded``.
        """
        name = relation.name if isinstance(relation, Label) else "join"
        above: List[Relation] = []
        node = relation.target if isinstance(relation, Label) else relation
        while not isinstance(node, Join):
            above.append(node)
            node = node.target
        executed = relation
        if node.engine == PIM:
            scan = self._pim_join_scan(node, tables, flush)
            if scan.state == "degraded":
                executed = reroot_degraded_join(relation)
        else:
            lhs_rows, lhs_result = self._side_rows(node.lhs, tables, flush)
            rhs_rows, rhs_result = self._side_rows(node.rhs, tables,
                                                   flush=False)
            scan = JoinScan(
                rows=ops.hash_join(lhs_rows, rhs_rows, node.on),
                elapsed_ns=(lhs_result.elapsed_ns + rhs_result.elapsed_ns
                            + HASH_BUILD_NS * len(lhs_rows)
                            + HASH_PROBE_NS * len(rhs_rows)),
                rows_scanned=(lhs_result.rows_scanned
                              + rhs_result.rows_scanned),
                rhs_rows=len(rhs_rows),
                path=AccessPath.DIRECT_ROW,
                state="-",
            )
        value: Any = [tuple(row[c] for c in node.columns)
                      for row in scan.rows]
        kept = scan.rows
        for op in reversed(above):
            if isinstance(op, Selection):
                kept = ops.filter_rows(kept, op.predicate)
                value = [tuple(row[c] for c in node.columns) for row in kept]
            elif isinstance(op, Aggregate):
                if op.group_by is not None:
                    value = ops.group_aggregate(kept, op.group_by, op.func,
                                                op.expr)
                else:
                    value = ops.aggregate(op.func,
                                          [op.expr.eval(row) for row in kept])
            elif isinstance(op, Projection):
                value = ops.project(kept, op.projected)
            # Transfers above a join are placement only.
        selectivity = len(scan.rows) / scan.rhs_rows if scan.rhs_rows else 0.0
        result = QueryResult(
            query=name,
            path=scan.path,
            value=value,
            elapsed_ns=scan.elapsed_ns,
            rows_scanned=scan.rows_scanned,
            selectivity=selectivity,
            state=scan.state,
            cache_stats=self.system.cache_stats(),
        )
        self.last_report = ExecutionReport(planned=relation,
                                           executed=executed, result=result)
        return result


def explain_placement(query: Query, engine: Engine = RME,
                      table: str = "S") -> str:
    """The engine-annotated tree a pinned placement would produce.

    A lightweight helper for docs and ``--explain``: no platform is
    built, so the tree shows the canonical placement rather than a
    cost-based decision.

    >>> from repro.query.queries import q1
    >>> print(explain_placement(q1()))
    Plan[Q1]: SELECT A1 FROM S
    └─ Transfer[rme → cpu]
       └─ Projection[A1] @rme
          └─ Transfer[cpu → rme]
             └─ Leaf[S] @cpu
    """
    return print_tree(relation_from_query(query, engine=engine, table=table))
