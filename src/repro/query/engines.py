"""Engines: the systems that can own and produce a relation's rows.

Following daf_relation, a relation tree is annotated with *engines* —
frozen, hashable objects identifying which subsystem holds (or can
compute) each subtree's rows — and :class:`~repro.query.relation
.Transfer` nodes mark the boundaries where rows move between them.

The reproduction ships five peer engines plus the fault-recovery one:

* :data:`CPU` — the row-store scan path: the CPU walks the base table
  in DRAM at row stride (the paper's Direct Access);
* :data:`RME` — the Relational Memory Engine: the PL fetches the
  column group on the fly and serves a packed ephemeral projection
  (cold or hot is *state*, not a different engine);
* :data:`COLUMNAR` — a materialised column-store copy in DRAM (the
  Columnar baseline: packed, but somebody pays to maintain it);
* :data:`INDEX` — a B+-tree probe fetching only qualifying rows;
* :data:`PIM` — bank-level processing-in-memory: predicates evaluate
  inside the DRAM banks as selection bitmaps and aggregates fold into
  in-bank accumulators, so only bitmaps or register lines cross the
  AXI boundary (see :mod:`repro.pim`);
* :data:`DEGRADED` — the CPU row scan *as a fallback*: the engine a
  subtree is re-rooted onto when an unrecoverable ``FaultError``
  escapes the RME or the PIM banks (see :mod:`repro.faults.recovery`).

New backends slot in as further ``Engine`` subclasses registered in
:data:`ENGINES`; the planner, the CLI's engine flags/usage errors and
``--explain`` output pick them up through the same interface.

>>> CPU.name, RME.name
('cpu', 'rme')
>>> CPU == CpuEngine(), CPU == RME
(True, False)
>>> RME.access_path.name
'RME'
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.access_path import AccessPath


@dataclass(frozen=True)
class Engine:
    """Base engine identity: hashable, comparable by type.

    Subclasses define :attr:`name` (the ``@name`` tag in printed plans)
    and :attr:`access_path` (the measured path the executor machinery
    uses to price a scan served by this engine).

    >>> Engine().name
    Traceback (most recent call last):
        ...
    NotImplementedError: Engine subclasses define a name
    """

    @property
    def name(self) -> str:
        """Short tag used in plan trees (``@cpu``, ``@rme``, ...)."""
        raise NotImplementedError("Engine subclasses define a name")

    @property
    def access_path(self) -> AccessPath:
        """The :class:`~repro.core.access_path.AccessPath` this engine prices."""
        raise NotImplementedError("Engine subclasses define an access path")

    @property
    def label(self) -> str:
        """Human-readable description (the access path's label)."""
        return self.access_path.label

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CpuEngine(Engine):
    """The CPU row-store scan: strided reads over the base table.

    >>> CpuEngine().access_path.name
    'DIRECT_ROW'
    """

    @property
    def name(self) -> str:
        """``cpu``."""
        return "cpu"

    @property
    def access_path(self) -> AccessPath:
        """Direct row-store access."""
        return AccessPath.DIRECT_ROW


@dataclass(frozen=True)
class RmeEngine(Engine):
    """The Relational Memory Engine: on-the-fly column-group projection.

    >>> RmeEngine().access_path.name
    'RME'
    """

    @property
    def name(self) -> str:
        """``rme``."""
        return "rme"

    @property
    def access_path(self) -> AccessPath:
        """The ephemeral-variable path through the PL."""
        return AccessPath.RME


@dataclass(frozen=True)
class ColumnarEngine(Engine):
    """A maintained column-store copy scanned by the CPU.

    >>> ColumnarEngine().access_path.name
    'COLUMNAR'
    """

    @property
    def name(self) -> str:
        """``columnar``."""
        return "columnar"

    @property
    def access_path(self) -> AccessPath:
        """The materialised-copy path."""
        return AccessPath.COLUMNAR


@dataclass(frozen=True)
class IndexEngine(Engine):
    """A B+-tree probe serving only the rows a range predicate matches.

    >>> IndexEngine().access_path.name
    'INDEX'
    """

    @property
    def name(self) -> str:
        """``index``."""
        return "index"

    @property
    def access_path(self) -> AccessPath:
        """The B+-tree probe path."""
        return AccessPath.INDEX


@dataclass(frozen=True)
class PimEngine(Engine):
    """Bank-level processing-in-memory: filter/aggregate at the banks.

    >>> PimEngine().access_path.name
    'PIM'
    """

    @property
    def name(self) -> str:
        """``pim``."""
        return "pim"

    @property
    def access_path(self) -> AccessPath:
        """The in-bank pushdown path."""
        return AccessPath.PIM


@dataclass(frozen=True)
class DegradedEngine(Engine):
    """The CPU row scan as a fault-recovery fallback.

    Semantically identical to :class:`CpuEngine` (same access path,
    same answers); the distinct identity keeps re-rooted subtrees
    visible in plans and reports — a ``@degraded`` tag means "the RME
    faulted and the processor fell back", not "the planner chose rows".

    >>> DegradedEngine().access_path.name
    'DIRECT_ROW'
    """

    @property
    def name(self) -> str:
        """``degraded``."""
        return "degraded"

    @property
    def access_path(self) -> AccessPath:
        """The CPU row scan (staleness-free fallback)."""
        return AccessPath.DIRECT_ROW


#: The singleton engine instances used throughout the query layer.
CPU = CpuEngine()
RME = RmeEngine()
COLUMNAR = ColumnarEngine()
INDEX = IndexEngine()
PIM = PimEngine()
DEGRADED = DegradedEngine()

#: Every planner-eligible engine, in display order.
ALL_ENGINES = (CPU, RME, COLUMNAR, INDEX, PIM)

#: Name → engine registry: the single source the CLI derives its
#: ``--engine`` choices, usage errors and ``--explain`` listings from.
#: ``degraded`` is present (plans mention it) but never planner-chosen.
ENGINES = {engine.name: engine for engine in ALL_ENGINES + (DEGRADED,)}


def engine_names(planner_only: bool = True):
    """Engine names in display order, for CLI listings.

    >>> engine_names()
    ('cpu', 'rme', 'columnar', 'index', 'pim')
    """
    pool = ALL_ENGINES if planner_only else ALL_ENGINES + (DEGRADED,)
    return tuple(engine.name for engine in pool)


def engine_by_name(name: str) -> Engine:
    """Resolve an engine tag, raising with the valid list on a miss.

    >>> engine_by_name("pim").access_path.name
    'PIM'
    """
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r} (choose from "
            f"{', '.join(engine_names())})"
        ) from None
