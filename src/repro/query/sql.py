"""A small SQL front-end for the benchmark's query class.

The paper presents its workload as SQL (Listings 3, 5, 6). This module
parses exactly that dialect into :class:`repro.query.queries.Query`
objects:

.. code-block:: sql

    SELECT A1, A2 FROM S;
    SELECT SUM(num_fld1 * num_fld4) FROM the_table WHERE num_fld3 > 10;
    SELECT AVG(A1) FROM S WHERE A3 < 5 AND A2 >= 0 GROUP BY A2;
    SELECT STD(A1) FROM S;

Grammar (case-insensitive keywords)::

    query      :=  SELECT select_list FROM name [WHERE predicate]
                   [GROUP BY name] [";"]
    select_list:=  "*" | agg "(" expr ")" | name ("," name)*
    agg        :=  SUM | AVG | COUNT | MIN | MAX | STD
    predicate  :=  disjunct (OR disjunct)*
    disjunct   :=  comparison (AND comparison)*
    comparison :=  expr (cmp expr) | "(" predicate ")"
    cmp        :=  "<" | "<=" | ">" | ">=" | "=" | "==" | "!=" | "<>"
    expr       :=  term (("+"|"-") term)*
    term       :=  factor (("*"|"/") factor)*
    factor     :=  number | name | "(" expr ")" | "-" factor

STD parses to the two-pass standard-deviation query, like Q7.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import QueryError
from .expr import BinOp, Col, Const, Expr
from .queries import Query

_KEYWORDS = {"select", "from", "where", "group", "by", "and", "or"}
_AGGREGATES = {"sum", "avg", "count", "min", "max", "std"}
#: Aggregates that need two passes over the data.
_TWO_PASS = {"std"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|<>|[<>=+\-*/(),;])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value):
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.value}"


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise QueryError(f"SQL syntax error at {sql[position:position + 12]!r}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "number":
            text = match.group()
            value = float(text) if "." in text else int(text)
            tokens.append(_Token("number", value))
        elif match.lastgroup == "name":
            word = match.group()
            lower = word.lower()
            if lower in _KEYWORDS:
                tokens.append(_Token("keyword", lower))
            else:
                tokens.append(_Token("name", word))
        else:
            tokens.append(_Token("op", match.group()))
    return tokens


class _Parser:
    """Recursive descent over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.position = 0

    # -- token plumbing --------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self.sql!r}")
        self.position += 1
        return token

    def _accept(self, kind: str, value=None) -> Optional[_Token]:
        token = self._peek()
        if token is None or token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self._next()

    def _expect(self, kind: str, value=None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            raise QueryError(
                f"expected {value or kind}, found "
                f"{found.value if found else 'end of query'!r} in {self.sql!r}"
            )
        return token

    # -- the grammar ---------------------------------------------------------------
    def parse(self, name: str) -> Query:
        self._expect("keyword", "select")
        select, aggregate, agg_expr = self._select_list()
        self._expect("keyword", "from")
        self._expect("name")  # the relation; single-table queries only
        predicate = None
        group_by = None
        if self._accept("keyword", "where"):
            predicate = self._predicate()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = self._expect("name").value
        self._accept("op", ";")
        if self._peek() is not None:
            raise QueryError(f"trailing tokens after query: {self.sql!r}")
        if group_by is not None and aggregate is None:
            raise QueryError("GROUP BY requires an aggregate select list")
        return Query(
            name=name,
            sql=self.sql.strip().rstrip(";"),
            select=tuple(select),
            predicate=predicate,
            aggregate=aggregate,
            agg_expr=agg_expr,
            group_by=group_by,
            passes=2 if aggregate in _TWO_PASS else 1,
        )

    def _select_list(self) -> Tuple[List[str], Optional[str], Optional[Expr]]:
        token = self._peek()
        if token is not None and token.kind == "name":
            lower = str(token.value).lower()
            if lower in _AGGREGATES:
                # Lookahead: aggregate call or a plain column that happens
                # to be named like one?
                after = (
                    self.tokens[self.position + 1]
                    if self.position + 1 < len(self.tokens)
                    else None
                )
                if after is not None and after.kind == "op" and after.value == "(":
                    self._next()
                    self._expect("op", "(")
                    agg_expr = self._expr()
                    self._expect("op", ")")
                    return [], lower, agg_expr
        columns = [self._expect("name").value]
        while self._accept("op", ","):
            columns.append(self._expect("name").value)
        return columns, None, None

    def _predicate(self) -> Expr:
        left = self._disjunct()
        while self._accept("keyword", "or"):
            left = BinOp("or", left, self._disjunct())
        return left

    def _disjunct(self) -> Expr:
        left = self._comparison()
        while self._accept("keyword", "and"):
            left = BinOp("and", left, self._comparison())
        return left

    def _comparison(self) -> Expr:
        left = self._expr()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in (
            "<", "<=", ">", ">=", "=", "==", "!=", "<>",
        ):
            op = self._next().value
            op = {"=": "==", "<>": "!="}.get(op, op)
            return BinOp(op, left, self._expr())
        return left

    def _expr(self) -> Expr:
        left = self._term()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in ("+", "-"):
                op = self._next().value
                left = BinOp(op, left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in ("*", "/"):
                op = self._next().value
                left = BinOp(op, left, self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        if self._accept("op", "("):
            inner = self._predicate()
            self._expect("op", ")")
            return inner
        if self._accept("op", "-"):
            return BinOp("-", Const(0), self._factor())
        token = self._next()
        if token.kind == "number":
            return Const(token.value)
        if token.kind == "name":
            return Col(token.value)
        raise QueryError(f"unexpected token {token.value!r} in {self.sql!r}")


def parse_query(sql: str, name: str = "adhoc") -> Query:
    """Parse one SQL statement into a :class:`Query`.

    Supports the single-table scan dialect of the paper's benchmark:
    projections, one aggregate with an arbitrary arithmetic argument, a
    WHERE tree of comparisons combined with AND/OR, and GROUP BY.
    """
    return _Parser(sql).parse(name)


_FROM_TABLE = re.compile(r"\bfrom\s+([A-Za-z_]\w*)", re.IGNORECASE)


def parse_relation(sql: str, name: str = "adhoc"):
    """Parse one SQL statement straight into an IR relation tree.

    The front half of the IR pipeline: the statement is parsed with
    :func:`parse_query` and lowered to the canonical unplaced tree
    (everything on the CPU engine, leaf named after the ``FROM``
    table). Hand the tree — or the original query — to
    :meth:`repro.query.processor.Processor.plan` for engine placement.

    >>> print(parse_relation("SELECT SUM(A1) FROM S WHERE A2 > 0"))
    adhoc:γ[sum(Col(A1))](σ[(Col(A2) > Const(0))](π[A2,A1](S)))
    """
    from .processor import relation_from_query

    query = _Parser(sql).parse(name)
    match = _FROM_TABLE.search(sql)
    table = match.group(1) if match else "S"
    return relation_from_query(query, table=table)
