"""repro — a full-system reproduction of *Relational Memory: Native
In-Memory Accesses on Rows and Columns* (EDBT 2023).

The paper's FPGA engine is reproduced as a transaction-level simulation of
the whole platform (DRAM, caches, AXI/clock-domain crossing, and the
Relational Memory Engine itself), together with the DBMS substrate it
serves: byte-exact row/column storage, MVCC snapshot transactions,
column compression, ephemeral variables, and a query layer running the
paper's seven-query benchmark over every access path.

Quick start::

    from repro import (
        RelationalMemorySystem, RowTable, Schema, Column, int32, q4,
        QueryExecutor, AccessPath,
    )

    schema = Schema([Column(f"A{i+1}", int32()) for i in range(16)])
    table = RowTable("s", schema)
    for i in range(8192):
        table.append([i] * 16)

    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    cg = system.register_var(loaded, ["A1"])     # the ephemeral variable
    result = QueryExecutor(system).run_rme(q4(), cg)
    print(result.value, result.elapsed_ns)
"""

from .config import DRAMTimings, PlatformConfig, RMEConfig, ZCU102
from .core import (
    AccessPath,
    EphemeralVariable,
    FilteredEphemeralVariable,
    HWAggregateVariable,
    HWGroupByVariable,
    LoadedColumnGroup,
    LoadedIndex,
    LoadedTable,
    RelationalMemorySystem,
)
from .errors import (
    CapacityError,
    CompressionError,
    ConfigurationError,
    GeometryError,
    MemoryMapError,
    QueryError,
    ReproError,
    SchemaError,
    SimulationError,
    TransactionError,
    WriteConflictError,
)
from .model import AnalyticalModel, EnergyBreakdown, EnergyModel, figure1_curves
from .query import (
    Col,
    Const,
    Engine,
    ExecutionPlan,
    ExecutionReport,
    Processor,
    Query,
    QueryExecutor,
    QueryResult,
    RELATIONAL_MEMORY_BENCHMARK,
    LeafRelation,
    Relation,
    RelationVisitor,
    choose_access_path,
    print_tree,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    parse_query,
    parse_relation,
    relation_from_query,
    to_query,
)
from .rme import (
    BSL,
    HWAggregation,
    HWGroupBy,
    HWJoinFilter,
    HWSelection,
    MLP,
    PCK,
    DesignParams,
    RMEngine,
    TableGeometry,
    design_by_name,
    estimate_resources,
)
from .serve import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    ServingReport,
    ServingSystem,
    TenantSpec,
    WorkloadProfile,
    default_tenants,
    profile_workload,
)
from .storage import (
    BPlusTreeIndex,
    Column,
    ColumnTable,
    RowTable,
    Schema,
    TransactionManager,
    VersionedRowTable,
    char,
    float64,
    int32,
    int64,
    listing1_schema,
    uint32,
    uniform_schema,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "DRAMTimings",
    "PlatformConfig",
    "RMEConfig",
    "ZCU102",
    # core system
    "AccessPath",
    "EphemeralVariable",
    "FilteredEphemeralVariable",
    "HWAggregateVariable",
    "HWGroupByVariable",
    "LoadedColumnGroup",
    "LoadedIndex",
    "LoadedTable",
    "RelationalMemorySystem",
    # RME
    "BSL",
    "MLP",
    "PCK",
    "DesignParams",
    "HWSelection",
    "HWAggregation",
    "HWGroupBy",
    "HWJoinFilter",
    "RMEngine",
    "TableGeometry",
    "design_by_name",
    "estimate_resources",
    # storage
    "BPlusTreeIndex",
    "Column",
    "ColumnTable",
    "RowTable",
    "Schema",
    "TransactionManager",
    "VersionedRowTable",
    "char",
    "float64",
    "int32",
    "int64",
    "uint32",
    "listing1_schema",
    "uniform_schema",
    # queries (relational-algebra IR + engines)
    "Col",
    "Const",
    "Engine",
    "ExecutionPlan",
    "ExecutionReport",
    "Processor",
    "Query",
    "QueryExecutor",
    "QueryResult",
    "RELATIONAL_MEMORY_BENCHMARK",
    "LeafRelation",
    "Relation",
    "RelationVisitor",
    "choose_access_path",
    "print_tree",
    "q1",
    "q2",
    "q3",
    "q4",
    "q5",
    "q6",
    "q7",
    "parse_query",
    "parse_relation",
    "relation_from_query",
    "to_query",
    # serving
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "ServingReport",
    "ServingSystem",
    "TenantSpec",
    "WorkloadProfile",
    "default_tenants",
    "profile_workload",
    # model
    "AnalyticalModel",
    "EnergyBreakdown",
    "EnergyModel",
    "figure1_curves",
    # errors
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "SimulationError",
    "MemoryMapError",
    "CapacityError",
    "SchemaError",
    "TransactionError",
    "WriteConflictError",
    "QueryError",
    "CompressionError",
]
