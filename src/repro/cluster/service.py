"""The cluster tier: route → dispatch → race deadline → failover → degrade.

:class:`ClusterSystem` serves an open-loop workload through N simulated
nodes, each a full serving stack (its own configuration ports, scheduler
and admission queue — the same machinery :class:`~repro.serve.service
.ServingSystem` uses for one node). A router places tenants on nodes via
consistent-hash or range sharding and keeps requests alive through
node-level faults:

* **per-request deadline + budgeted retries** — every attempt races an
  SLO-derived deadline; a timed-out or crashed attempt retries on the
  next replica with the :class:`~repro.faults.RecoveryPolicy`'s linear
  backoff, up to its retry budget.
* **hedging** — when the chosen node's *observed* p99 has drifted past
  the deadline, the router dispatches a second copy to a replica; first
  answer wins, the loser is abandoned (counted as wasted work).
* **health-check failover** — a crashed node is marked down after
  ``health_fail_threshold`` missed probes and routed around until a
  probe after recovery sees it up; per-node circuit breakers fail fast
  on nodes that keep eating the retry budget.
* **graceful degradation** — when no RME replica can answer, the request
  falls back to the CPU row-scan replica (the staleness-bounded snapshot
  the PR 3 executor degrades to), carrying a *measured* staleness:
  ``now - watermark`` of whatever stale source served it.

Answers are always the profiled golden values, so under every fault plan
the served answers stay byte-identical to a fault-free run — the cluster
reprices *when* and *where* answers are produced, never *what*.

Determinism: one :class:`~repro.sim.Simulator` drives arrivals, node
loops, fault application, health watches and per-request deadline
timers; all randomness is seeded (workload seed, plan seed). The same
inputs reproduce bit-identical failover event logs and report
fingerprints. Per-node metrics registries merge into the cluster rollup
through :meth:`~repro.sim.MetricsRegistry.merged`, so cluster
percentiles are bit-equal to one unsharded registry observing the same
latencies (the PR 5 algebra, one tier up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..config import PlatformConfig, ZCU102
from ..errors import ConfigurationError
from ..faults import (
    DEFAULT_RECOVERY,
    NODE_FAULT_KINDS,
    CircuitBreaker,
    FaultPlan,
    RecoveryPolicy,
)
from ..rme.designs import MLP, DesignParams
from ..sim import Event, MetricsRegistry, Simulator
from ..serve.profiles import WorkloadProfile, profile_workload
from ..serve.scheduler import POLICIES, Port, make_scheduler
from ..serve.workload import OpenLoopWorkload, Request, TenantSpec
from .node import ClusterNode
from .placement import Placement, make_placement, routing_names

#: request.node value for answers served by the CPU snapshot replica.
CPU_REPLICA = -1


@dataclass
class _Attempt:
    """One dispatch of a request to one node's queue."""

    request: Request
    node_index: int
    winner: Event
    enqueued_ns: float
    abandoned: bool = False


@dataclass(frozen=True)
class NodeSLO:
    """One node's service-level summary over a cluster run."""

    node: str
    served: int
    shed: int
    abandoned: int
    p50_ns: float
    p99_ns: float
    crashes: int
    stale_serves: int
    wasted: int

    @property
    def index(self) -> int:
        return int(self.node[len("node"):])


@dataclass
class ClusterReport:
    """Everything one cluster run produced, availability first."""

    n_nodes: int
    replication: int
    routing: str
    policy: str
    failover: bool
    hedging: bool
    deadline_ns: float
    duration_ns: float
    arrivals: int
    served: int
    shed: int
    failed: int
    degraded: int
    p50_ns: float
    p95_ns: float
    p99_ns: float
    retries: int
    timeouts: int
    hedges: int
    hedge_wins: int
    failover_routes: int
    breaker_opens: int
    health_downs: int
    fault_events: int
    staleness_max_ns: float
    staleness_p99_ns: float
    nodes: List[NodeSLO]
    metrics: MetricsRegistry = field(repr=False)
    merged: MetricsRegistry = field(repr=False)
    records: List[Request] = field(repr=False, default_factory=list)
    events: List[tuple] = field(repr=False, default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of arrivals answered (shed and failed count against)."""
        return self.served / self.arrivals if self.arrivals else 0.0

    @property
    def degraded_ratio(self) -> float:
        return self.degraded / self.served if self.served else 0.0

    @property
    def throughput_qps(self) -> float:
        if not self.duration_ns:
            return 0.0
        return self.served / (self.duration_ns / 1e9)

    def node(self, index: int) -> NodeSLO:
        for slo in self.nodes:
            if slo.index == index:
                return slo
        raise ConfigurationError(f"no node {index} in this report")

    def fingerprint(self) -> tuple:
        """Deterministic digest; same seed ⇒ bit-identical tuple."""
        return (
            self.duration_ns,
            self.arrivals,
            self.served,
            self.shed,
            self.failed,
            self.degraded,
            self.retries,
            self.timeouts,
            self.hedges,
            self.hedge_wins,
            self.failover_routes,
            self.breaker_opens,
            self.health_downs,
            self.fault_events,
            self.staleness_max_ns,
            tuple(
                (n.node, n.served, n.shed, n.abandoned,
                 n.p50_ns, n.p99_ns, n.crashes, n.stale_serves, n.wasted)
                for n in self.nodes
            ),
            sum(r.finish_ns for r in self.records),
            tuple(self.events),
        )


class ClusterSystem:
    """Routes a workload across N simulated serving nodes."""

    def __init__(
        self,
        workload_profile: Union[WorkloadProfile, Sequence[TenantSpec]],
        n_nodes: int = 4,
        replication: int = 2,
        routing: str = "consistent-hash",
        policy: str = "fcfs",
        n_ports: Optional[int] = None,
        queue_depth: int = 64,
        quantum: int = 8,
        platform: PlatformConfig = ZCU102,
        design: DesignParams = MLP,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        failover: bool = True,
        hedging: bool = True,
        deadline_ns: Optional[float] = None,
        deadline_factor: float = 6.0,
        health_interval_ns: float = 25_000.0,
        health_fail_threshold: int = 2,
        sync_interval_ns: float = 50_000.0,
        hedge_min_samples: int = 16,
    ):
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown scheduler policy {policy!r} "
                f"(choose from {', '.join(POLICIES)})"
            )
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if deadline_factor <= 0:
            raise ConfigurationError("deadline_factor must be positive")
        if health_interval_ns <= 0 or sync_interval_ns <= 0:
            raise ConfigurationError(
                "health and sync intervals must be positive"
            )
        if health_fail_threshold < 1:
            raise ConfigurationError("health_fail_threshold must be >= 1")
        if hedge_min_samples < 1:
            raise ConfigurationError("hedge_min_samples must be >= 1")
        if isinstance(workload_profile, WorkloadProfile):
            self.profile = workload_profile
        else:
            self.profile = profile_workload(
                workload_profile, platform=platform, design=design
            )
        if n_ports is None:
            n_ports = 2 if policy == "multi-port" else 1
        if policy != "multi-port" and n_ports != 1:
            raise ConfigurationError(
                f"policy {policy!r} models the single configuration port; "
                "use multi-port for n_ports > 1"
            )
        if fault_plan is not None:
            for event in fault_plan.events:
                if event.kind not in NODE_FAULT_KINDS:
                    raise ConfigurationError(
                        f"cluster plans take node-level kinds only, "
                        f"got {event.kind!r}"
                    )
                if event.target >= n_nodes:
                    raise ConfigurationError(
                        f"fault targets node {event.target} but the cluster "
                        f"has {n_nodes} nodes"
                    )
        self.n_nodes = n_nodes
        self.replication = min(replication, n_nodes)
        self.routing = routing
        self.policy = policy
        self.n_ports = n_ports
        self.queue_depth = queue_depth
        self.quantum = quantum
        self.fault_plan = fault_plan
        self.recovery = recovery if recovery is not None else DEFAULT_RECOVERY
        self.failover = failover
        self.hedging = hedging
        self.deadline_ns = (
            deadline_ns if deadline_ns is not None
            else deadline_factor * self.profile.mean_cold_service_ns
        )
        self.health_interval_ns = health_interval_ns
        self.health_fail_threshold = health_fail_threshold
        self.sync_interval_ns = sync_interval_ns
        self.hedge_min_samples = hedge_min_samples
        self.placement: Placement = make_placement(
            routing, self.profile.tenant_names, n_nodes, self.replication
        )
        self.metrics: Optional[MetricsRegistry] = None

    # -- the run -------------------------------------------------------------
    def run(self, workload: OpenLoopWorkload) -> ClusterReport:
        """Serve the whole workload across the cluster; returns the report."""
        if not isinstance(workload, OpenLoopWorkload):
            raise ConfigurationError(
                "the cluster tier serves open-loop workloads"
            )
        for spec in workload.mix.tenants:
            for template, _query in spec.templates:
                self.profile.profile(spec.name, template)  # raises if absent
        sim = self.sim = Simulator()
        metrics = self.metrics = MetricsRegistry("cluster")
        self._router_stats = metrics.scope("router")
        self._slo_stats = metrics.scope("slo")
        self._fault_stats = metrics.scope("faults")
        self.nodes: List[ClusterNode] = []
        for index in range(self.n_nodes):
            breaker = CircuitBreaker(
                self.recovery.breaker_threshold,
                self.recovery.breaker_cooldown_ns,
            ) if self.recovery.enabled else None
            node = ClusterNode(
                index, MetricsRegistry(f"node{index}"), breaker
            )
            node.ports = [Port(index=i) for i in range(self.n_ports)]
            node.scheduler = make_scheduler(
                self.policy, node.ports, self.queue_depth, node.sched_stats,
                self._descriptor_of_attempt, quantum=self.quantum,
            )
            self.nodes.append(node)
        self.records: List[Request] = []
        self.events: List[tuple] = []
        self._arrivals_done = False
        self._open_requests = 0
        self._max_finish_ns = 0.0
        if self.fault_plan is not None and self.fault_plan.events:
            sim.process(self._fault_driver(), name="faults")
        sim.process(self._open_loop_driver(workload.schedule()),
                    name="arrivals")
        for node in self.nodes:
            for port in node.ports:
                sim.process(self._port_loop(node, port),
                            name=f"{node.name}.port{port.index}")
        sim.run()
        return self._build_report()

    def _descriptor_of_attempt(self, attempt: _Attempt) -> object:
        request = attempt.request
        return self.profile.profile(request.tenant, request.template).descriptor

    def _log(self, kind: str, *detail) -> None:
        self.events.append((self.sim.now, kind) + detail)

    # -- arrivals ------------------------------------------------------------
    def _open_loop_driver(self, schedule):
        for arrival in schedule:
            gap = arrival.at_ns - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            request = Request(
                index=arrival.index,
                tenant=arrival.tenant,
                template=arrival.template,
                arrival_ns=self.sim.now,
            )
            self.records.append(request)
            self._router_stats.bump("arrivals")
            self._open_requests += 1
            self.sim.process(self._request_driver(request),
                             name=f"req{request.index}")
        self._arrivals_done = True
        self._kick_all()

    def _kick_all(self) -> None:
        for node in self.nodes:
            node.kick()

    def _complete(self, request: Request) -> None:
        self._open_requests -= 1
        if request.finish_ns > self._max_finish_ns:
            self._max_finish_ns = request.finish_ns
        if self._arrivals_done and self._open_requests == 0:
            self._kick_all()

    # -- routing -------------------------------------------------------------
    def _pick_node(self, candidates: List[int], tried: Set[int],
                   now: float) -> Optional[int]:
        """The first live replica the router may try (breaker-gated)."""
        order = candidates if self.failover else candidates[:1]
        for index in order:
            if self.failover and index in tried:
                continue
            node = self.nodes[index]
            if self.failover and node.marked_down:
                self._router_stats.bump("health_skips")
                continue
            if node.breaker is not None and not node.breaker.allow(now):
                self._router_stats.bump("breaker_rejects")
                continue
            return index
        return None

    def _maybe_hedge(self, candidates: List[int], tried: Set[int],
                     chosen: int, now: float) -> Optional[int]:
        """A replica to hedge to when ``chosen``'s tail has drifted.

        The trigger is *observed*: the node's own p99 latency histogram
        (once it has ``hedge_min_samples`` serves) exceeding the
        SLO-derived deadline. Hedging needs failover semantics — a
        second copy on a replica — so it is gated on both flags.
        """
        if not (self.hedging and self.failover):
            return None
        node = self.nodes[chosen]
        latency = node.slo_stats.histogram("latency_ns")
        if latency.count < self.hedge_min_samples:
            return None
        if latency.percentile(99) <= self.deadline_ns:
            return None
        for index in candidates:
            if index == chosen or index in tried:
                continue
            other = self.nodes[index]
            if other.marked_down:
                continue
            if other.breaker is not None and not other.breaker.allow(now):
                continue
            return index
        return None

    # -- the per-request driver ----------------------------------------------
    def _request_driver(self, request: Request):
        profile = self.profile.profile(request.tenant, request.template)
        candidates = self.placement.replicas_for(request.tenant)
        primary = candidates[0]
        tried: Set[int] = set()
        failures = 0
        shed_everywhere = False
        while True:
            now = self.sim.now
            chosen = self._pick_node(candidates, tried, now)
            if chosen is None:
                break
            if chosen != primary:
                self._router_stats.bump("failover_routes")
                self._log("failover", request.index, primary, chosen)
            hedge = self._maybe_hedge(candidates, tried, chosen, now)
            outcome = yield from self._race(request, chosen, hedge)
            kind, winner_index = outcome
            if kind == "ok":
                if hedge is not None and winner_index == hedge:
                    self._router_stats.bump("hedge_wins")
                    self._log("hedge_win", request.index, hedge)
                self._finish_served(request, winner_index, primary)
                return
            if kind == "shed":
                if not self.failover:
                    shed_everywhere = True
                    break
                tried.add(chosen)
                if hedge is not None:
                    tried.add(hedge)
                continue
            # Deadline expired, or a node crashed mid-scan (the outcome
            # then names the crashed node; a timeout blames the chosen).
            failed_index = winner_index if winner_index is not None else chosen
            node = self.nodes[failed_index]
            if node.breaker is not None:
                node.breaker.record_failure(self.sim.now)
            self._router_stats.bump(
                "timeouts" if kind == "timeout" else "crash_failures"
            )
            failures += 1
            if self.failover:
                tried.add(chosen)
            if not self.recovery.enabled or failures > self.recovery.max_retries:
                break
            request.retries += 1
            self._router_stats.bump("retries")
            yield self.sim.timeout(self.recovery.retry_backoff_ns * failures)
        if shed_everywhere:
            request.shed = True
            self._router_stats.bump("shed")
            self._complete(request)
            return
        if self.recovery.cpu_fallback:
            yield from self._serve_degraded(request, profile)
            return
        request.failed = True
        request.state = "failed"
        request.finish_ns = self.sim.now
        self._router_stats.bump("failed")
        self._complete(request)

    def _race(self, request: Request, chosen: int, hedge: Optional[int]):
        """Dispatch (possibly hedged) and race the deadline; one winner."""
        winner = self.sim.event()
        attempts = []
        attempt = self._dispatch(request, chosen, winner)
        if attempt is not None:
            attempts.append(attempt)
        if hedge is not None and attempt is not None:
            hedged = self._dispatch(request, hedge, winner)
            if hedged is not None:
                attempts.append(hedged)
                self._router_stats.bump("hedges")
                self._log("hedge", request.index, chosen, hedge)
        if not attempts:
            return ("shed", None)
        self.sim.process(self._deadline_timer(winner),
                         name=f"deadline{request.index}")
        outcome = yield winner
        for attempt in attempts:
            attempt.abandoned = True
            # A dispatch that concludes nothing must release any
            # half-open probe slot it was admitted through, or the
            # breaker would wait forever for the probe's verdict. The
            # node the driver blames gets record_failure there instead.
            if attempt.node_index != outcome[1]:
                breaker = self.nodes[attempt.node_index].breaker
                if breaker is not None:
                    breaker.release_probe()
        return outcome

    def _dispatch(self, request: Request, index: int,
                  winner: Event) -> Optional[_Attempt]:
        node = self.nodes[index]
        attempt = _Attempt(
            request=request, node_index=index, winner=winner,
            enqueued_ns=self.sim.now,
        )
        if not node.scheduler.admit(attempt):
            return None
        node.kick()
        return attempt

    def _deadline_timer(self, winner: Event):
        yield self.sim.timeout(self.deadline_ns)
        if not winner.triggered:
            winner.succeed(("timeout", None))

    # -- node service --------------------------------------------------------
    def _port_loop(self, node: ClusterNode, port: Port):
        sim = self.sim
        while True:
            attempt = node.scheduler.pop(port.index)
            if attempt is None:
                if (self._arrivals_done and self._open_requests == 0
                        and node.scheduler.backlog() == 0):
                    return
                yield node.wake_event(sim)
                continue
            if attempt.abandoned or attempt.winner.triggered:
                node.node_stats.bump("abandoned")
                continue
            while node.is_down(sim.now):
                # Dead node: queued work waits out the outage (repeated
                # crashes may extend it). The request's deadline timer
                # usually abandons the attempt first.
                yield sim.timeout(node.down_until - sim.now)
            if attempt.abandoned or attempt.winner.triggered:
                node.node_stats.bump("abandoned")
                continue
            profile = self.profile.profile(
                attempt.request.tenant, attempt.request.template
            )
            start = sim.now
            epoch = node.crash_epoch
            if port.descriptor != profile.descriptor:
                port.descriptor = profile.descriptor
                port.switches += 1
                node.sched_stats.bump("context_switches")
                reconfig = profile.program_ns + profile.fill_ns
            else:
                node.sched_stats.bump("hot_hits")
                reconfig = 0.0
            scale = node.service_scale(sim.now)
            if scale > 1.0:
                node.node_stats.bump("slowed_serves")
            yield sim.timeout((reconfig + profile.hot_ns) * scale)
            if node.crash_epoch != epoch and node.down_until > start:
                # The node died mid-scan: the work is lost and the next
                # serve re-programs the port from scratch.
                port.descriptor = None
                node.node_stats.bump("lost_in_flight")
                self._finish_attempt(node, attempt, ("crashed", node.index))
                continue
            port.served += 1
            node.served += 1
            self._finish_attempt(node, attempt, ("ok", node.index))

    def _finish_attempt(self, node: ClusterNode, attempt: _Attempt,
                        outcome: tuple) -> None:
        if attempt.winner.triggered:
            node.node_stats.bump("wasted_completions")
            return
        attempt.winner.succeed(outcome)

    # -- completion paths ----------------------------------------------------
    def _finish_served(self, request: Request, winner_index: int,
                       primary: int) -> None:
        now = self.sim.now
        node = self.nodes[winner_index]
        profile = self.profile.profile(request.tenant, request.template)
        request.finish_ns = now
        request.value = profile.value
        request.port = winner_index
        request.state = "served"
        if node.breaker is not None:
            node.breaker.record_success(now)
        node.slo_stats.bump("served")
        node.slo_stats.observe("latency_ns", request.latency_ns)
        if winner_index != primary:
            # A replica answered: the read carries its replication
            # watermark — the measured staleness bound.
            staleness = node.staleness_at(now, self.sync_interval_ns)
            node.slo_stats.bump("stale_serves")
            node.slo_stats.observe("staleness_ns", staleness)
            self._slo_stats.observe("staleness_ns", staleness)
        self._complete(request)

    def _serve_degraded(self, request: Request, profile):
        """No RME replica answered: the CPU row-scan snapshot does."""
        yield self.sim.timeout(profile.direct_ns)
        now = self.sim.now
        request.degraded = True
        request.state = "degraded"
        request.finish_ns = now
        request.value = profile.value
        request.port = CPU_REPLICA
        staleness = now - (now // self.sync_interval_ns) * self.sync_interval_ns
        self._router_stats.bump("degraded")
        self._slo_stats.bump("served")
        self._slo_stats.observe("latency_ns", request.latency_ns)
        self._slo_stats.observe("staleness_ns", staleness)
        self._log("degraded_cpu", request.index, staleness)
        self._complete(request)

    # -- fault application ---------------------------------------------------
    def _fault_driver(self):
        for event in self.fault_plan.events:
            gap = event.at_ns - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            self._apply_fault(event)

    def _apply_fault(self, event) -> None:
        now = self.sim.now
        node = self.nodes[event.target]
        self._fault_stats.bump("fired_" + event.kind)
        self._fault_stats.bump("fired_total")
        if event.kind == "node_crash":
            node.crash_epoch += 1
            node.crash_started = now
            node.down_until = max(node.down_until, now + event.duration_ns)
            node.down_windows.append((now, now + event.duration_ns))
            node.node_stats.bump("crashes")
            self._log("node_crash", node.index, event.duration_ns)
            if self.failover:
                self.sim.process(self._health_watch(node, now),
                                 name=f"health{node.index}")
        elif event.kind == "node_slow":
            node.slow_factor = max(2.0, float(event.severity))
            node.slow_until = max(node.slow_until, now + event.duration_ns)
            node.node_stats.bump("slow_windows")
            self._log("node_slow", node.index, event.severity,
                      event.duration_ns)
        else:  # replica_lag
            node.lag_windows.append((now, now + event.duration_ns))
            node.node_stats.bump("lag_windows")
            self._log("replica_lag", node.index, event.duration_ns)

    def _health_watch(self, node: ClusterNode, crash_start: float):
        """Mark a crashed node down after missed probes, up after recovery."""
        detection = self.health_interval_ns * self.health_fail_threshold
        yield self.sim.timeout(detection)
        if not node.is_down(self.sim.now) or node.crash_started != crash_start:
            return  # recovered before detection, or a newer watch owns it
        node.marked_down = True
        self._router_stats.bump("health_downs")
        self._log("health_down", node.index)
        wait = node.down_until - self.sim.now + self.health_interval_ns
        yield self.sim.timeout(max(0.0, wait))
        if not node.is_down(self.sim.now):
            node.marked_down = False
            self._log("health_up", node.index)

    # -- reporting -----------------------------------------------------------
    def _build_report(self) -> ClusterReport:
        duration = self._max_finish_ns or self.sim.now
        nodes: List[NodeSLO] = []
        for node in self.nodes:
            latency = node.slo_stats.histogram("latency_ns")
            nodes.append(NodeSLO(
                node=node.name,
                served=node.slo_stats.count("served"),
                shed=node.sched_stats.count("shed"),
                abandoned=node.node_stats.count("abandoned"),
                p50_ns=latency.percentile(50),
                p99_ns=latency.percentile(99),
                crashes=node.node_stats.count("crashes"),
                stale_serves=node.slo_stats.count("stale_serves"),
                wasted=node.node_stats.count("wasted_completions"),
            ))
            # The cluster rollup folds every node's latencies through the
            # deterministic merge algebra; degraded serves were observed
            # directly in the cluster registry's own slo scope.
        merged = MetricsRegistry.merged(
            [n.metrics for n in self.nodes] + [self.metrics],
            name="cluster-merged",
        )
        overall = merged.statset("slo").histogram("latency_ns")
        staleness = merged.statset("slo").histogram("staleness_ns")
        served = sum(n.served for n in nodes) + self._router_stats.count(
            "degraded"
        )
        return ClusterReport(
            n_nodes=self.n_nodes,
            replication=self.replication,
            routing=self.routing,
            policy=self.policy,
            failover=self.failover,
            hedging=self.hedging,
            deadline_ns=self.deadline_ns,
            duration_ns=duration,
            arrivals=self._router_stats.count("arrivals"),
            served=served,
            shed=self._router_stats.count("shed"),
            failed=self._router_stats.count("failed"),
            degraded=self._router_stats.count("degraded"),
            p50_ns=overall.percentile(50),
            p95_ns=overall.percentile(95),
            p99_ns=overall.percentile(99),
            retries=self._router_stats.count("retries"),
            timeouts=self._router_stats.count("timeouts"),
            hedges=self._router_stats.count("hedges"),
            hedge_wins=self._router_stats.count("hedge_wins"),
            failover_routes=self._router_stats.count("failover_routes"),
            breaker_opens=sum(
                n.breaker.opens for n in self.nodes if n.breaker is not None
            ),
            health_downs=self._router_stats.count("health_downs"),
            fault_events=self._fault_stats.count("fired_total"),
            staleness_max_ns=staleness.max or 0.0,
            staleness_p99_ns=staleness.percentile(99),
            nodes=nodes,
            metrics=self.metrics,
            merged=merged,
            records=self.records,
            events=self.events,
        )
