"""Capacity planning: how many nodes buy how much QPS at the p99 SLO.

The ROADMAP's north star is a serving fleet sized for real traffic; this
module answers the sizing question the ops team actually asks — *for N
nodes, what arrival rate can the cluster sustain while p99 stays inside
the SLO and nothing is shed?* — by sweeping a deterministic ladder of
load factors against fault-free cluster runs and recording the highest
rate that still meets the SLO.

The ladder is expressed in multiples of the cluster's aggregate
saturation rate (``n_nodes ×`` one always-cold port's service rate), so
the same factors mean the same relative load at every cluster size and
the resulting ``nodes → max QPS`` table is comparable across rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..serve.profiles import WorkloadProfile
from ..serve.workload import OpenLoopWorkload
from .service import ClusterSystem

#: Relative load ladder: fractions of the aggregate saturation rate.
DEFAULT_LOAD_FACTORS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.1)


@dataclass(frozen=True)
class CapacityPoint:
    """One cluster size's sustainable-throughput verdict."""

    nodes: int
    max_qps: float  #: highest offered rate meeting the SLO (0 = none did)
    p99_ns: float  #: p99 at that rate
    availability: float
    rates_tried: Tuple[float, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "nodes": self.nodes,
            "max_qps": self.max_qps,
            "p99_ns": self.p99_ns,
            "availability": self.availability,
            "rates_tried": list(self.rates_tried),
        }


def capacity_plan(
    profile: WorkloadProfile,
    node_counts: Sequence[int] = (1, 2, 4),
    slo_p99_ns: Optional[float] = None,
    n_requests: int = 240,
    seed: int = 7,
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    **cluster_kwargs,
) -> List[CapacityPoint]:
    """``nodes → max QPS at the p99 SLO`` over fault-free cluster runs.

    ``slo_p99_ns`` defaults to the same SLO-derived deadline the cluster
    router races requests against, so "meets the SLO" and "would not
    have been hedged/retried" agree. Extra keyword arguments flow to
    :class:`ClusterSystem` (routing, policy, replication, ...).
    """
    if not node_counts:
        raise ConfigurationError("capacity planning needs >= 1 node count")
    if n_requests < 1:
        raise ConfigurationError("n_requests must be >= 1")
    per_node_qps = profile.saturation_rate_qps()
    points: List[CapacityPoint] = []
    for nodes in node_counts:
        cluster_proto = ClusterSystem(profile, n_nodes=nodes, **cluster_kwargs)
        slo = slo_p99_ns if slo_p99_ns is not None else cluster_proto.deadline_ns
        best_qps = 0.0
        best_p99 = 0.0
        best_avail = 0.0
        rates = tuple(factor * nodes * per_node_qps for factor in load_factors)
        for rate in rates:
            cluster = ClusterSystem(profile, n_nodes=nodes, **cluster_kwargs)
            workload = OpenLoopWorkload(
                list(profile.tenants), rate_qps=rate,
                n_requests=n_requests, seed=seed,
            )
            report = cluster.run(workload)
            meets = (
                report.p99_ns <= slo
                and report.availability == 1.0
                and report.shed == 0
            )
            if meets and rate > best_qps:
                best_qps = rate
                best_p99 = report.p99_ns
                best_avail = report.availability
        points.append(CapacityPoint(
            nodes=nodes,
            max_qps=best_qps,
            p99_ns=best_p99,
            availability=best_avail,
            rates_tried=rates,
        ))
    return points
