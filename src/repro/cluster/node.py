"""One simulated serving node: ports, scheduler, health and replication.

A :class:`ClusterNode` is the cluster tier's view of one full serving
stack (engine + configuration ports + admission queue). It owns its own
:class:`~repro.sim.MetricsRegistry` — per-node latency histograms merge
into the cluster rollup through the PR 5 algebra, so cluster percentiles
are bit-equal to an unsharded run observing the same latencies.

Fault state is plain data mutated by the cluster's fault driver:

* ``down_until`` / ``crash_epoch`` — a ``node_crash`` outage window; the
  epoch counter lets the serve loop detect a crash that struck mid-scan.
* ``slow_until`` / ``slow_factor`` — a ``node_slow`` (AXI-storm) window
  scaling every service time on the node.
* ``lag_windows`` — ``replica_lag`` windows during which the node's
  replication watermark freezes.

The replication watermark itself is *arithmetic*, not a process: the
node syncs from its primaries every ``sync_interval_ns`` except while
crashed or lagged, so :meth:`synced_at` reconstructs the watermark for
any instant deterministically (and in O(windows), not O(ticks)).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..faults import CircuitBreaker
from ..sim import Event, MetricsRegistry, Simulator
from ..serve.scheduler import Port, SchedulerPolicy


class ClusterNode:
    """State and plumbing for one node of a :class:`ClusterSystem`."""

    def __init__(self, index: int, metrics: MetricsRegistry,
                 breaker: Optional[CircuitBreaker]):
        self.index = index
        self.name = f"node{index}"
        self.metrics = metrics
        self.slo_stats = metrics.scope("slo")
        self.node_stats = metrics.scope("node")
        self.sched_stats = metrics.scope("scheduler")
        self.breaker = breaker
        # Wired by the cluster after construction.
        self.ports: List[Port] = []
        self.scheduler: Optional[SchedulerPolicy] = None
        # Fault state.
        self.down_until = 0.0
        self.crash_started = -1.0
        self.crash_epoch = 0
        self.slow_until = 0.0
        self.slow_factor = 1.0
        self.down_windows: List[Tuple[float, float]] = []
        self.lag_windows: List[Tuple[float, float]] = []
        # Health-probe view (updated by the cluster's watch processes).
        self.marked_down = False
        # Serving counters mirrored outside the registry for cheap access.
        self.served = 0
        self._wake: Optional[Event] = None

    # -- idle plumbing (same pattern as ServingSystem) ----------------------
    def wake_event(self, sim: Simulator) -> Event:
        if self._wake is None or self._wake.triggered:
            self._wake = sim.event()
        return self._wake

    def kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- fault-state queries -------------------------------------------------
    def is_down(self, now: float) -> bool:
        return now < self.down_until

    def service_scale(self, now: float) -> float:
        return self.slow_factor if now < self.slow_until else 1.0

    def _blocking_window(self, t: float) -> Optional[Tuple[float, float]]:
        """The down/lag window covering instant ``t``, if any."""
        for start, end in self.down_windows:
            if start <= t < end:
                return (start, end)
        for start, end in self.lag_windows:
            if start <= t < end:
                return (start, end)
        return None

    def synced_at(self, now: float, sync_interval_ns: float) -> float:
        """The node's replication watermark at ``now``.

        The latest sync tick at or before ``now`` that did not land
        inside a crash or lag window; ticks inside a window collapse to
        the last clean tick before the window opened.
        """
        tick = math.floor(now / sync_interval_ns) * sync_interval_ns
        # Each iteration jumps below one blocking window, so this
        # terminates after at most len(windows) + 1 rounds.
        for _ in range(len(self.down_windows) + len(self.lag_windows) + 1):
            if tick <= 0.0:
                return 0.0
            window = self._blocking_window(tick)
            if window is None:
                return tick
            start = window[0]
            below = math.floor(start / sync_interval_ns) * sync_interval_ns
            if below >= tick:
                below = tick - sync_interval_ns
            tick = below
        return max(0.0, tick)

    def staleness_at(self, now: float, sync_interval_ns: float) -> float:
        """How far behind the primaries a read off this replica is."""
        return max(0.0, now - self.synced_at(now, sync_interval_ns))
