"""Shard placement: which nodes hold a tenant's table and replicas.

The cluster tier assigns every tenant a *primary* node plus
``replication - 1`` distinct replica nodes. Two routing policies are
registered (the registry mirrors :func:`repro.query.engines.engine_names`
so CLI help and usage errors stay generated, never hand-listed):

* **consistent-hash** — tenants and nodes meet on a CRC32 ring with
  virtual nodes. Adding or removing one node moves only the tenants in
  the arcs it owned; replicas are the next distinct nodes clockwise.
* **range** — tenants sort lexicographically and split into contiguous
  ranges, one per node (the classic range-sharded layout); replicas are
  the cyclically following nodes.

Placement is pure arithmetic over the tenant name: the router, every
test, and every shard of a ``parallel_map`` sweep compute bit-identical
replica sets with no coordination.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, List, Sequence, Tuple, Type

from ..errors import ConfigurationError


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


class Placement:
    """Shared validation plus the replica-set surface."""

    name = "?"

    def __init__(self, tenants: Sequence[str], n_nodes: int, replication: int):
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        if not tenants:
            raise ConfigurationError("placement needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ConfigurationError("tenant names must be unique")
        self.tenants = list(tenants)
        self.n_nodes = n_nodes
        self.replication = min(replication, n_nodes)

    def replicas_for(self, tenant: str) -> List[int]:
        """Node indices holding ``tenant``'s shard, primary first."""
        raise NotImplementedError

    def primary_for(self, tenant: str) -> int:
        return self.replicas_for(tenant)[0]

    def assignment(self) -> Dict[str, List[int]]:
        """Every tenant's replica set (stable iteration order)."""
        return {t: self.replicas_for(t) for t in self.tenants}


class ConsistentHashPlacement(Placement):
    """CRC32 ring with virtual nodes; replicas walk clockwise."""

    name = "consistent-hash"

    def __init__(self, tenants: Sequence[str], n_nodes: int,
                 replication: int, vnodes: int = 64):
        super().__init__(tenants, n_nodes, replication)
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        ring: List[Tuple[int, int]] = []
        for node in range(n_nodes):
            for v in range(vnodes):
                ring.append((_crc(f"node{node}#vnode{v}"), node))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _node in ring]

    def replicas_for(self, tenant: str) -> List[int]:
        if tenant not in self.tenants:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        start = bisect.bisect_right(self._points, _crc(tenant))
        replicas: List[int] = []
        for step in range(len(self._ring)):
            _point, node = self._ring[(start + step) % len(self._ring)]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == self.replication:
                    break
        return replicas


class RangePlacement(Placement):
    """Sorted tenants split into contiguous per-node ranges."""

    name = "range"

    def __init__(self, tenants: Sequence[str], n_nodes: int, replication: int):
        super().__init__(tenants, n_nodes, replication)
        ordered = sorted(self.tenants)
        per_node = max(1, -(-len(ordered) // n_nodes))  # ceil division
        self._primary = {
            tenant: min(index // per_node, n_nodes - 1)
            for index, tenant in enumerate(ordered)
        }

    def replicas_for(self, tenant: str) -> List[int]:
        if tenant not in self._primary:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        primary = self._primary[tenant]
        return [
            (primary + step) % self.n_nodes
            for step in range(self.replication)
        ]


#: Registered routing policies, in presentation order.
ROUTING_POLICIES: Dict[str, Type[Placement]] = {
    ConsistentHashPlacement.name: ConsistentHashPlacement,
    RangePlacement.name: RangePlacement,
}


def routing_names() -> List[str]:
    """Every registered routing policy name (CLI help + usage errors)."""
    return list(ROUTING_POLICIES)


def make_placement(routing: str, tenants: Sequence[str], n_nodes: int,
                   replication: int) -> Placement:
    """Instantiate the named routing policy (see :data:`ROUTING_POLICIES`)."""
    cls = ROUTING_POLICIES.get(routing)
    if cls is None:
        raise ConfigurationError(
            f"unknown routing policy {routing!r} "
            f"(choose from {', '.join(routing_names())})"
        )
    return cls(tenants, n_nodes, replication)
