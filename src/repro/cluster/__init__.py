"""repro.cluster — the sharded serving tier over N simulated nodes.

The serving layer (:mod:`repro.serve`) models one node; this package
scales it out and keeps it *available*:

* :mod:`repro.cluster.placement` — consistent-hash / range shard
  placement behind a registry (:func:`routing_names` feeds CLI help and
  usage errors);
* :mod:`repro.cluster.node` — one node's ports, scheduler, health and
  replication-watermark state;
* :mod:`repro.cluster.service` — :class:`ClusterSystem`: deadline-raced
  dispatch, budgeted retries with backoff, hedging against tail drift,
  health-check failover with per-node circuit breakers, and staleness-
  measured degradation to the CPU row-scan replica;
* :mod:`repro.cluster.capacity` — ``nodes → max QPS at the p99 SLO``
  planning sweeps.

Drive it with ``python -m repro cluster``; see ``docs/cluster.md``.
"""

from .capacity import DEFAULT_LOAD_FACTORS, CapacityPoint, capacity_plan
from .node import ClusterNode
from .placement import (
    ConsistentHashPlacement,
    Placement,
    ROUTING_POLICIES,
    RangePlacement,
    make_placement,
    routing_names,
)
from .service import CPU_REPLICA, ClusterReport, ClusterSystem, NodeSLO

__all__ = [
    "CPU_REPLICA",
    "CapacityPoint",
    "ClusterNode",
    "ClusterReport",
    "ClusterSystem",
    "ConsistentHashPlacement",
    "DEFAULT_LOAD_FACTORS",
    "NodeSLO",
    "Placement",
    "ROUTING_POLICIES",
    "RangePlacement",
    "capacity_plan",
    "make_placement",
    "routing_names",
]
