"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows without writing Python:

* ``figures`` — regenerate the paper's figures/tables (all or a subset);
* ``bench`` — run one shardable sweep across ``--jobs N`` worker
  processes (``repro.parallel``); output is bit-identical to ``--jobs 1``;
* ``query`` — run an ad-hoc SQL query over a generated benchmark relation
  on every access path and compare;
* ``serve`` — run a concurrent multi-tenant query workload through the
  RME scheduler and report per-tenant SLOs (p50/p95/p99, throughput,
  shed rate);
* ``cluster`` — shard the same workload across N simulated RME nodes
  with replica failover, hedged retries and staleness-measured CPU
  degradation, optionally under a seeded node-fault plan;
* ``trace`` — run a query with tracing on and export the causal timeline
  as Chrome trace-event JSON (Perfetto / ``chrome://tracing`` loadable);
* ``stats`` — run a query and dump the telemetry registry (table, JSON
  or CSV): counters, gauges and latency percentiles per component;
* ``perf`` — wall-clock benchmark of the fast-forward replay against
  the cycle-level simulator, asserting bit-identical simulated results
  and writing ``BENCH_wallclock.json``;
* ``resources`` — print the Table-3 style FPGA estimate for a design;
* ``info`` — dump the simulated platform configuration.

Usage errors (unknown subcommands, malformed flag values) print a
one-line message and exit with status 2 — they never raise out of
:func:`main`.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional

from . import __version__
from .bench import extensions as extension_drivers
from .bench import figures as figure_drivers
from .bench.report import (
    metrics_to_csv,
    metrics_to_json,
    render_cluster_report,
    render_figure,
    render_metrics,
    render_slo_report,
    render_table,
)
from .bench.workloads import make_relation
from .cluster.placement import routing_names
from .config import ZCU102
from .core.relmem import RelationalMemorySystem
from .errors import ConfigurationError, QueryError, ReproError
from .query.engines import engine_by_name, engine_names
from .query.executor import QueryExecutor
from .query.sql import parse_query
from .rme.designs import ALL_DESIGNS, design_by_name
from .rme.resources import estimate_resources
from .serve.scheduler import policy_names
from .sim.trace import write_chrome_trace


class _UsageError(Exception):
    """An argparse-level mistake, reported as one line + exit code 2."""


class _Parser(argparse.ArgumentParser):
    """An ArgumentParser that raises instead of calling ``sys.exit``.

    ``add_subparsers`` instantiates the same class for subcommands, so
    unknown subcommands and malformed option values everywhere surface
    as :class:`_UsageError` and become a one-line message from
    :func:`main` — no tracebacks, no ``SystemExit`` from library code.
    """

    def error(self, message: str):
        raise _UsageError(f"{self.prog}: {message}")

#: figure name -> (driver kwargs builder, normalizer)
_FIGURES: Dict[str, Callable] = {
    "fig01": lambda rows: figure_drivers.fig01_projectivity(),
    "fig06": lambda rows: figure_drivers.fig06_q1_designs(n_rows=rows),
    "fig07": lambda rows: figure_drivers.fig07_cache_stats(n_rows=2 * rows),
    "fig08": lambda rows: figure_drivers.fig08_offset_sweep(n_rows=max(128, rows // 4)),
    "fig09": lambda rows: figure_drivers.fig09_projection_colsize(n_rows=rows),
    "fig10": lambda rows: figure_drivers.fig10_projection_rowsize(n_rows=rows),
    "fig11": lambda rows: figure_drivers.fig11_agg_colsize(n_rows=rows),
    "fig12": lambda rows: figure_drivers.fig12_agg_rowsize(n_rows=rows),
    "fig13a": lambda rows: figure_drivers.fig13_q7_locality(n_rows=rows, sweep="col"),
    "fig13b": lambda rows: figure_drivers.fig13_q7_locality(n_rows=rows, sweep="row"),
    # Extension studies (DESIGN.md section 8).
    "ext-capacity": lambda rows: extension_drivers.ext_capacity_cliff(n_rows=rows),
    "ext-pushdown": lambda rows: extension_drivers.ext_pushdown_ladder(n_rows=rows),
    "ext-hybrid": lambda rows: extension_drivers.ext_hybrid_crossover(n_rows=rows),
    "ext-isolation": lambda rows: extension_drivers.ext_isolation(n_rows=rows),
    "ext-multirun": lambda rows: extension_drivers.ext_noncontiguous_tradeoff(n_rows=rows),
    "ext-serving": lambda rows: extension_drivers.ext_serving_sweep(
        n_rows=max(128, rows // 2)),
    "ext-faults": lambda rows: extension_drivers.ext_faults_sweep(
        n_rows=max(128, rows // 2)),
    "ext-pim": lambda rows: extension_drivers.ext_pim_shootout(n_rows=rows),
    "ext-pim-join": lambda rows: extension_drivers.ext_pim_join_shootout(
        n_fact=2 * rows),
    "ext-pim-groupby": lambda rows: extension_drivers.ext_pim_groupby_shootout(
        n_rows=2 * rows),
    "ext-cluster": lambda rows: extension_drivers.ext_cluster_sweep(
        n_rows=max(128, rows // 2)),
}

#: Sweeps whose drivers shard across processes; same row scaling as
#: ``_FIGURES`` so ``repro bench NAME --jobs 1`` matches ``repro figures
#: NAME`` point for point.
_PARALLEL_FIGURES: Dict[str, Callable] = {
    "fig01": lambda rows, jobs: figure_drivers.fig01_projectivity(jobs=jobs),
    "fig06": lambda rows, jobs: figure_drivers.fig06_q1_designs(
        n_rows=rows, jobs=jobs),
    "fig08": lambda rows, jobs: figure_drivers.fig08_offset_sweep(
        n_rows=max(128, rows // 4), jobs=jobs),
    "ext-serving": lambda rows, jobs: extension_drivers.ext_serving_sweep(
        n_rows=max(128, rows // 2), jobs=jobs),
    "ext-faults": lambda rows, jobs: extension_drivers.ext_faults_sweep(
        n_rows=max(128, rows // 2), jobs=jobs),
    "ext-pim": lambda rows, jobs: extension_drivers.ext_pim_shootout(
        n_rows=rows, jobs=jobs),
    "ext-pim-join": lambda rows, jobs: extension_drivers.ext_pim_join_shootout(
        n_fact=2 * rows, jobs=jobs),
    "ext-pim-groupby": lambda rows, jobs:
        extension_drivers.ext_pim_groupby_shootout(n_rows=2 * rows, jobs=jobs),
    "ext-cluster": lambda rows, jobs: extension_drivers.ext_cluster_sweep(
        n_rows=max(128, rows // 2), jobs=jobs),
}

#: Sweeps with a CI-sized ``--smoke`` grid.
_SMOKE_FIGURES: Dict[str, Callable] = {
    "ext-pim": lambda rows, jobs: extension_drivers.ext_pim_shootout(
        n_rows=rows, jobs=jobs, smoke=True),
    "ext-pim-join": lambda rows, jobs: extension_drivers.ext_pim_join_shootout(
        n_fact=2 * rows, jobs=jobs, smoke=True),
    "ext-pim-groupby": lambda rows, jobs:
        extension_drivers.ext_pim_groupby_shootout(
            n_rows=2 * rows, jobs=jobs, smoke=True),
    "ext-cluster": lambda rows, jobs: extension_drivers.ext_cluster_sweep(
        n_rows=max(128, rows // 2), jobs=jobs, smoke=True),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Relational Memory (EDBT 2023) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command")

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "names", nargs="*",
        help=f"figures to run (default: all of {', '.join(_FIGURES)})",
    )
    figures.add_argument("--rows", type=int, default=1024,
                         help="rows per experiment point (default 1024)")
    figures.add_argument("--csv", metavar="DIR", default=None,
                         help="also write each figure's series as CSV into DIR")

    bench = commands.add_parser(
        "bench", help="run one shardable sweep across worker processes")
    bench.add_argument(
        "name",
        help=f"sweep to run (one of {', '.join(_PARALLEL_FIGURES)})",
    )
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes; output is bit-identical to "
                            "--jobs 1 (default 1)")
    bench.add_argument("--rows", type=int, default=1024,
                       help="rows per experiment point (default 1024)")
    bench.add_argument("--csv", metavar="PATH", default=None,
                       help="also write the series as CSV to PATH")
    bench.add_argument("--json", dest="json_path", metavar="PATH",
                       default=None,
                       help="also write xs/series as sorted JSON to PATH "
                            "(byte-comparable across --jobs values)")
    bench.add_argument("--smoke", action="store_true",
                       help="run the sweep's CI-sized smoke grid "
                            f"(supported by {', '.join(_SMOKE_FIGURES)})")
    bench.add_argument("--explain", action="store_true",
                       help="print the engine-annotated IR plan tree for "
                            "the sweep's queries and exit without running")
    bench.add_argument("--engine", default=None, metavar="NAME",
                       help="with --explain: pin the plan to one engine "
                            f"({', '.join(engine_names())}) instead of "
                            "letting the optimizer choose")
    bench.add_argument("--sql", default=None, metavar="SQL",
                       help="with --explain: plan this ad-hoc query instead "
                            "of the sweep's built-in templates")

    query = commands.add_parser("query", help="run an ad-hoc SQL query")
    query.add_argument("sql", help='e.g. "SELECT SUM(A1) FROM S WHERE A2 > 0"')
    query.add_argument("--rows", type=int, default=2048,
                       help="rows in the generated relation S (default 2048)")
    query.add_argument("--cols", type=int, default=16,
                       help="columns in S (default 16)")
    query.add_argument("--width", type=int, default=4,
                       help="bytes per column (default 4)")
    query.add_argument("--seed", type=int, default=42)

    def _adhoc_args(sub):
        sub.add_argument("sql", help='e.g. "SELECT SUM(A1) FROM S WHERE A2 > 0"')
        sub.add_argument("--rows", type=int, default=2048,
                         help="rows in the generated relation S (default 2048)")
        sub.add_argument("--cols", type=int, default=16,
                         help="columns in S (default 16)")
        sub.add_argument("--width", type=int, default=4,
                         help="bytes per column (default 4)")
        sub.add_argument("--seed", type=int, default=42)
        sub.add_argument("--design", default="MLP",
                         help="BSL, PCK or MLP (default MLP)")
        sub.add_argument("--hot", action="store_true",
                         help="run the query twice and report the second "
                              "(buffer-hot) execution")

    trace = commands.add_parser(
        "trace", help="trace a query and export Chrome trace JSON")
    _adhoc_args(trace)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event JSON path (default trace.json)")
    trace.add_argument("--tail", type=int, default=20,
                       help="trace lines to print (default 20)")
    trace.add_argument("--component", default=None,
                       help="only print records of this component "
                            "(e.g. trapper, dram, fetch-0)")
    trace.add_argument("--capacity", type=int, default=1_000_000,
                       help="tracer ring-buffer capacity (default 1000000)")

    stats = commands.add_parser(
        "stats", help="run a query and dump the telemetry registry")
    _adhoc_args(stats)
    stats.add_argument("--prefix", default="",
                       help='only components at/under this path (e.g. "rme")')
    stats.add_argument("--format", choices=("table", "json", "csv"),
                       default="table", help="output format (default table)")

    serve = commands.add_parser(
        "serve", help="serve a concurrent multi-tenant query workload")
    serve.add_argument("--policy", default="fcfs", metavar="NAME",
                       help="configuration-port scheduler "
                            f"({', '.join(policy_names())}; default fcfs)")
    serve.add_argument("--arrival", choices=("poisson", "bursty", "closed"),
                       default="poisson",
                       help="arrival process (default poisson); 'closed' runs "
                            "think-time clients instead of an open stream")
    serve.add_argument("--rate", type=float, default=None,
                       help="open-loop arrival rate in queries per simulated "
                            "second (default: 0.8x the single-port "
                            "saturation rate)")
    serve.add_argument("--requests", type=int, default=400,
                       help="total requests to serve (default 400)")
    serve.add_argument("--tenants", type=int, default=3,
                       help="tenant count, one table each (default 3)")
    serve.add_argument("--rows", type=int, default=1024,
                       help="rows per tenant table (default 1024)")
    serve.add_argument("--ports", type=int, default=None,
                       help="engine contexts; only multi-port supports >1 "
                            "(default: 2 for multi-port, else 1)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission-control backlog bound (default 64)")
    serve.add_argument("--quantum", type=int, default=8,
                       help="ctx-switch drain quantum (default 8)")
    serve.add_argument("--clients", type=int, default=16,
                       help="closed-loop client population (default 16)")
    serve.add_argument("--think-us", type=float, default=30.0,
                       help="closed-loop mean think time in us (default 30)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--design", default="MLP",
                       help="BSL, PCK or MLP (default MLP)")
    serve.add_argument("--format", choices=("table", "json", "csv"),
                       default="table",
                       help="SLO table, or the raw metrics registry as "
                            "JSON/CSV (default table)")
    serve.add_argument("--config", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="override a platform parameter, e.g. "
                            "--config pl_freq_mhz=300 (repeatable)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="shard tenant/template profiling across this "
                            "many processes (default: single-process "
                            "legacy profiling)")
    serve.add_argument("--explain", action="store_true",
                       help="print each (tenant, template) engine-annotated "
                            "IR plan tree and exit without serving")
    serve.add_argument("--sql", default=None, metavar="SQL",
                       help="with --explain: plan this ad-hoc query against "
                            "each tenant's table instead of the built-in "
                            "templates")

    cluster = commands.add_parser(
        "cluster",
        help="shard a serving workload across N nodes with failover")
    cluster.add_argument("--nodes", type=int, default=3,
                         help="simulated serving nodes (default 3)")
    cluster.add_argument("--replication", type=int, default=2,
                         help="replicas per tenant shard (default 2, "
                              "capped at --nodes)")
    cluster.add_argument("--routing", default="consistent-hash",
                         metavar="NAME",
                         help="shard placement policy "
                              f"({', '.join(routing_names())}; "
                              "default consistent-hash)")
    cluster.add_argument("--policy", default="fcfs", metavar="NAME",
                         help="per-node configuration-port scheduler "
                              f"({', '.join(policy_names())}; default fcfs)")
    cluster.add_argument("--requests", type=int, default=300,
                         help="total requests to serve (default 300)")
    cluster.add_argument("--tenants", type=int, default=4,
                         help="tenant count, one table each (default 4)")
    cluster.add_argument("--rows", type=int, default=512,
                         help="rows per tenant table (default 512)")
    cluster.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate in queries per "
                              "simulated second (default: 0.6x the "
                              "cluster's aggregate saturation rate)")
    cluster.add_argument("--queue-depth", type=int, default=64,
                         help="per-node admission backlog bound (default 64)")
    cluster.add_argument("--fault-plan",
                         choices=("none", "node-crash", "slow-node",
                                  "replica-lag", "storm"),
                         default="none",
                         help="seeded node-fault plan to inject "
                              "(default none)")
    cluster.add_argument("--intensity", type=float, default=1.0,
                         help="fault-plan rate multiplier (default 1.0)")
    cluster.add_argument("--no-failover", action="store_true",
                         help="pin each request to its primary replica "
                              "(the availability baseline)")
    cluster.add_argument("--no-hedging", action="store_true",
                         help="disable hedged duplicate requests on "
                              "p99 drift")
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--design", default="MLP",
                         help="BSL, PCK or MLP (default MLP)")
    cluster.add_argument("--format", choices=("table", "json", "csv"),
                         default="table",
                         help="cluster SLO table, or the merged metrics "
                              "registry as JSON/CSV (default table)")
    cluster.add_argument("--smoke", action="store_true",
                         help="tiny CI grid; asserts availability > 0 and "
                              "byte-identical served answers")

    chaos = commands.add_parser(
        "chaos", help="inject hardware faults and measure recovery")
    chaos.add_argument("--fault-rates", default="0.0,0.05,0.15,0.3",
                       metavar="R1,R2,...",
                       help="per-attempt fault probabilities for the serving "
                            "sweep (default 0.0,0.05,0.15,0.3)")
    chaos.add_argument("--requests", type=int, default=300,
                       help="requests per serving run (default 300)")
    chaos.add_argument("--tenants", type=int, default=2,
                       help="tenant count, one table each (default 2)")
    chaos.add_argument("--rows", type=int, default=512,
                       help="rows per relation (default 512)")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--design", default="MLP",
                       help="BSL, PCK or MLP (default MLP)")
    chaos.add_argument("--smoke", action="store_true",
                       help="tiny fast parameters for CI smoke runs")
    chaos.add_argument("--config", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="override a platform parameter (repeatable)")

    perf = commands.add_parser(
        "perf",
        help="wall-clock benchmark: fast-forward replay vs cycle-level",
    )
    perf.add_argument("--quick", action="store_true",
                      help="small scales for CI: cycle-equality is still "
                           "asserted, the speedup floor is not")
    perf.add_argument("--smoke", action="store_true", dest="quick",
                      help="alias for --quick (CI smoke runs)")
    perf.add_argument("--profile", action="store_true",
                      help="also print per-scenario timing-memo hit rates "
                           "and the fastpath fallback tally by reason")
    perf.add_argument("--scenario", action="append", dest="scenarios",
                      metavar="NAME",
                      help="run a subset (fig01, fig06, serving, windowed, "
                           "multirun, pushdown); repeatable")
    perf.add_argument("--min-speedup", type=float, default=None,
                      help="fig06 acceptance floor (default 3.0; none with "
                           "--quick)")
    perf.add_argument("--output", default="BENCH_wallclock.json",
                      help="JSON report path (default BENCH_wallclock.json; "
                           "'-' to skip)")
    perf.add_argument("--jobs", type=int, default=None,
                      help="shard each scenario's sweep across this many "
                           "processes (both timed runs use the same jobs)")

    resources = commands.add_parser("resources", help="Table-3 style estimate")
    resources.add_argument("--design", default="MLP",
                           help="BSL, PCK or MLP (default MLP)")

    commands.add_parser("info", help="print the platform configuration")
    return parser


def _cmd_figures(args, out) -> int:
    import pathlib

    from .bench.report import to_csv

    names = args.names or list(_FIGURES)
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)} "
              f"(choose from {', '.join(_FIGURES)})", file=out)
        return 2
    csv_dir = None
    if args.csv is not None:
        csv_dir = pathlib.Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        result = _FIGURES[name](args.rows)
        normalize = "Direct" if name == "fig06" else ""
        print(render_figure(result, normalized_to=normalize), file=out)
        print(file=out)
        if csv_dir is not None:
            path = csv_dir / f"{name}.csv"
            path.write_text(to_csv(result) + "\n")
            print(f"wrote {path}", file=out)
    return 0


def _parse_sql_or_usage(sql: str, prog: str):
    """Parse ad-hoc SQL, reporting mistakes as one-line usage errors.

    Malformed SQL, unknown aggregates and unsupported predicates are
    the caller's typos, not runtime failures — exit code 2, no
    traceback.
    """
    try:
        return parse_query(sql)
    except QueryError as exc:
        raise _UsageError(f"{prog}: {exc}")


def _engine_or_usage(name: str, prog: str):
    """Resolve ``--engine NAME`` against the registry."""
    try:
        return engine_by_name(name)
    except KeyError:
        raise _UsageError(
            f"{prog}: unknown engine {name!r} "
            f"(choose from {', '.join(engine_names())})"
        )


def _bench_explain_queries(name: str):
    """The (label, query) pairs a sweep's points are built from."""
    from .query.queries import q1, q2, q4

    if name in ("ext-serving", "ext-faults", "ext-cluster"):
        return [("project", q1("A3")),
                ("filter", q2(col="A1", sel_col="A2", k=0)),
                ("sum", q4("A1"))]
    if name == "ext-pim":
        # The shootout's two shapes: a selective filter the banks can
        # pre-filter, and an aggregate they can fold locally.
        return [("filter", q2(col="A1", sel_col="A2", k=0)),
                ("sum", q4("A1"))]
    if name == "ext-pim-groupby":
        # The grouped-SUM shape: each bank folds a local key→state table.
        from .query.expr import Col
        from .query.queries import Query

        return [("grouped-sum", Query(
            name="gsum",
            sql="SELECT SUM(A1) FROM S WHERE A2 > 0 GROUP BY A3",
            select=(), aggregate="sum", agg_expr=Col("A1"),
            predicate=Col("A2") > 0, group_by="A3"))]
    return [(name, q1())]


def _bench_explain_join(args, out) -> int:
    """``repro bench ext-pim-join --explain``: print the join's IR plan."""
    from .bench.workloads import make_join_tables
    from .query.expr import Col
    from .query.processor import Processor
    from .query.queries import Query

    engine = None
    if args.engine is not None:
        engine = _engine_or_usage(args.engine, "repro bench")
    dim_t, fact_t = make_join_tables(max(128, min(args.rows, 1024)))
    system = RelationalMemorySystem()
    dim_loaded = system.load_table(dim_t)
    fact_loaded = system.load_table(fact_t)
    dim = Query(name="dim", sql="", select=("K", "D1"))
    fact = Query(name="fact", sql="", select=("K", "A1"),
                 predicate=Col("F1") > 0)
    try:
        plan = Processor(system).plan_join(
            "K", dim, dim_loaded, fact, fact_loaded, engine=engine,
            rhs_selectivity=0.01,
        )
    except QueryError as exc:
        raise _UsageError(f"repro bench: {exc}")
    print(f"IR plans for sweep {args.name!r} (nothing is executed):", file=out)
    reason = (plan.choice.reason if plan.choice is not None
              else f"pinned via --engine {args.engine}")
    print(f"\n[join] engine={plan.engine.name}: {reason}", file=out)
    print(plan.explain(), file=out)
    return 0


def _cmd_bench_explain(args, out) -> int:
    """``repro bench NAME --explain``: print IR plans, execute nothing."""
    from .query.processor import Processor

    if args.name == "ext-pim-join" and args.sql is None:
        return _bench_explain_join(args, out)
    engine = None
    if args.engine is not None:
        engine = _engine_or_usage(args.engine, "repro bench")
    if args.sql is not None:
        queries = [("adhoc", _parse_sql_or_usage(args.sql, "repro bench"))]
    else:
        queries = _bench_explain_queries(args.name)
    table = make_relation(max(128, min(args.rows, 1024)), seed=42)
    for _label, query in queries:
        missing = [c for c in query.columns() if c not in table.schema]
        if missing:
            raise _UsageError(
                f"repro bench: query references {missing}, but the sweep "
                f"relation has columns A1..A{len(table.schema.columns)}"
            )
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    processor = Processor(system)
    plans = []
    for label, query in queries:
        try:
            plans.append((label, processor.plan(query, loaded, engine=engine)))
        except QueryError as exc:
            raise _UsageError(f"repro bench: {exc}")
    print(f"IR plans for sweep {args.name!r} (nothing is executed):", file=out)
    for label, plan in plans:
        reason = (plan.choice.reason if plan.choice is not None
                  else f"pinned via --engine {args.engine}")
        print(f"\n[{label}] engine={plan.engine.name}: {reason}", file=out)
        print(plan.explain(), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    import json
    import pathlib

    from .bench.report import to_csv
    from .parallel import resolve_jobs

    if args.name not in _PARALLEL_FIGURES:
        print(f"unknown sweep: {args.name!r} "
              f"(choose from {', '.join(_PARALLEL_FIGURES)}; "
              f"--explain previews any sweep's IR plan)", file=out)
        return 2
    if args.explain:
        return _cmd_bench_explain(args, out)
    if args.engine is not None or args.sql is not None:
        raise _UsageError(
            "repro bench: --engine/--sql only apply with --explain"
        )
    if args.smoke and args.name not in _SMOKE_FIGURES:
        raise _UsageError(
            f"repro bench: --smoke is only supported for "
            f"{', '.join(_SMOKE_FIGURES)}"
        )
    jobs = resolve_jobs(args.jobs)
    driver = _SMOKE_FIGURES[args.name] if args.smoke \
        else _PARALLEL_FIGURES[args.name]
    result = driver(args.rows, jobs)
    normalize = "Direct" if args.name == "fig06" else ""
    print(render_figure(result, normalized_to=normalize), file=out)
    print(f"jobs: {jobs}  shards: {len(result.xs)}", file=out)
    if args.csv is not None:
        path = pathlib.Path(args.csv)
        path.write_text(to_csv(result) + "\n")
        print(f"wrote {path}", file=out)
    if args.json_path is not None:
        path = pathlib.Path(args.json_path)
        payload = {"fig_id": result.fig_id, "xs": result.xs,
                   "series": result.series}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}", file=out)
    return 0


def _cmd_query(args, out) -> int:
    from .pim import supports_query

    query = _parse_sql_or_usage(args.sql, "repro query")
    table = make_relation(args.rows, n_cols=args.cols, col_width=args.width,
                          seed=args.seed)
    missing = [c for c in query.columns() if c not in table.schema]
    if missing:
        print(f"query references {missing}, but S has columns "
              f"A1..A{args.cols}", file=out)
        return 2
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    executor = QueryExecutor(system)

    direct = executor.run_direct(query, loaded)
    columnar = executor.run_columnar(
        query, loaded,
        system.load_column_group(table, table.schema.covering_columns(query.columns())),
    )
    var = system.register_var(
        loaded, query.columns(), allow_noncontiguous=True
    )
    cold = executor.run_rme(query, var)
    hot = executor.run_rme(query, var)

    print(f"answer: {_short(direct.value)}", file=out)
    print(f"selectivity: {direct.selectivity:.1%}  rows: {direct.rows_scanned}",
          file=out)
    rows = [
        ["direct (row-store)", round(direct.elapsed_ns), 1.0],
        ["columnar copy", round(columnar.elapsed_ns),
         columnar.elapsed_ns / direct.elapsed_ns],
        ["RME cold", round(cold.elapsed_ns), cold.elapsed_ns / direct.elapsed_ns],
        ["RME hot", round(hot.elapsed_ns), hot.elapsed_ns / direct.elapsed_ns],
    ]
    reason = supports_query(query)
    if not reason:
        pim = executor.run_pim(query, loaded)
        rows.append(["PIM pushdown", round(pim.elapsed_ns),
                     pim.elapsed_ns / direct.elapsed_ns])
    else:
        rows.append(["PIM pushdown", f"n/a ({reason})", "-"])
    print(render_table(["access path", "simulated ns", "vs direct"], rows),
          file=out)
    return 0


def _adhoc_rme_run(args, out):
    """Shared setup of ``trace``/``stats``: run the SQL on the RME path.

    Returns ``(system, result)`` or ``None`` after printing a usage error.
    """
    query = _parse_sql_or_usage(args.sql, "repro stats")
    table = make_relation(args.rows, n_cols=args.cols, col_width=args.width,
                          seed=args.seed)
    missing = [c for c in query.columns() if c not in table.schema]
    if missing:
        print(f"query references {missing}, but S has columns "
              f"A1..A{args.cols}", file=out)
        return None
    design = design_by_name(args.design)
    system = RelationalMemorySystem(design=design)
    loaded = system.load_table(table)
    executor = QueryExecutor(system)
    var = system.register_var(loaded, query.columns(), allow_noncontiguous=True)
    result = executor.run_rme(query, var)
    if args.hot:
        result = executor.run_rme(query, var)
    return system, result, design.name


def _cmd_trace(args, out) -> int:
    # Mirrors _adhoc_rme_run, but the tracer must attach between system
    # construction and the first access, so the setup is inlined here.
    query = _parse_sql_or_usage(args.sql, "repro trace")
    table = make_relation(args.rows, n_cols=args.cols, col_width=args.width,
                          seed=args.seed)
    missing = [c for c in query.columns() if c not in table.schema]
    if missing:
        print(f"query references {missing}, but S has columns "
              f"A1..A{args.cols}", file=out)
        return 2
    design = design_by_name(args.design)
    system = RelationalMemorySystem(design=design)
    tracer = system.enable_tracing(capacity=args.capacity)
    loaded = system.load_table(table)
    executor = QueryExecutor(system)
    var = system.register_var(loaded, query.columns(), allow_noncontiguous=True)
    result = executor.run_rme(query, var)
    if args.hot:
        tracer.clear()
        result = executor.run_rme(query, var)

    print(f"answer: {_short(result.value)}", file=out)
    print(f"elapsed: {result.elapsed_ns:.0f} simulated ns "
          f"({design.name} {'hot' if args.hot else 'cold'})", file=out)
    filters = {"component": args.component} if args.component else {}
    print(tracer.render(limit=args.tail, **filters), file=out)
    exported = write_chrome_trace(tracer, args.out)
    dropped = f" ({tracer.dropped} older records dropped)" if tracer.dropped else ""
    print(f"wrote {exported} records to {args.out}{dropped} — open in "
          "https://ui.perfetto.dev or chrome://tracing", file=out)
    return 0


def _cmd_stats(args, out) -> int:
    run = _adhoc_rme_run(args, out)
    if run is None:
        return 2
    system, result, design_name = run
    if args.format == "json":
        print(metrics_to_json(system.metrics), file=out)
    elif args.format == "csv":
        print(metrics_to_csv(system.metrics), file=out)
    else:
        print(f"answer: {_short(result.value)}", file=out)
        print(f"elapsed: {result.elapsed_ns:.0f} simulated ns "
              f"({design_name} {'hot' if args.hot else 'cold'})", file=out)
        print(render_metrics(system.metrics, prefix=args.prefix), file=out)
    return 0


def _short(value) -> str:
    text = repr(value)
    return text if len(text) <= 200 else text[:200] + "..."


def _platform_from_overrides(pairs: List[str]):
    """``KEY=VALUE`` strings -> a ZCU102 variant; bad input raises."""
    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"malformed --config {pair!r}: expected KEY=VALUE"
            )
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"--config {key}: {raw!r} is not a number"
                )
        overrides[key] = value
    if not overrides:
        return ZCU102
    try:
        return ZCU102.with_overrides(**overrides)
    except TypeError:
        known = ", ".join(f.name for f in dataclasses.fields(ZCU102))
        raise ConfigurationError(
            f"unknown platform parameter in --config "
            f"({', '.join(overrides)}); known: {known}"
        )


def _cmd_serve_explain(args, tenants, out) -> int:
    """``repro serve --explain``: print per-pair IR plans, serve nothing."""
    from .query.engines import RME
    from .query.processor import Processor

    platform = _platform_from_overrides(args.config)
    design = design_by_name(args.design)
    system = RelationalMemorySystem(platform, design)
    loaded = {t.name: system.load_table(t.table) for t in tenants}
    processor = Processor(system)
    adhoc = None
    if args.sql is not None:
        adhoc = _parse_sql_or_usage(args.sql, "repro serve")
        for spec in tenants:
            missing = [c for c in adhoc.columns()
                       if c not in loaded[spec.name].schema]
            if missing:
                raise _UsageError(
                    f"repro serve: query references {missing}, but tenant "
                    f"{spec.name!r} has columns "
                    f"{', '.join(loaded[spec.name].schema.names)}"
                )
    print("IR plans per (tenant, template); serving executes the RME tree "
          "and re-roots onto @degraded on unrecoverable faults:", file=out)
    for spec in tenants:
        templates = ([("adhoc", adhoc)] if adhoc is not None
                     else list(spec.templates))
        for template, query in templates:
            plan = processor.plan(query, loaded[spec.name], engine=RME)
            print(f"\n[{spec.name}/{template}]", file=out)
            print(plan.explain(), file=out)
    return 0


def _cmd_serve(args, out) -> int:
    from .serve import (
        PROFILE_CACHE,
        ClosedLoopWorkload,
        OpenLoopWorkload,
        ServingSystem,
        default_tenants,
        profile_workload,
    )

    if args.policy not in policy_names():
        raise _UsageError(
            f"repro serve: unknown scheduler policy {args.policy!r} "
            f"(choose from {', '.join(policy_names())})"
        )
    platform = _platform_from_overrides(args.config)
    design = design_by_name(args.design)
    tenants = default_tenants(
        n_tenants=args.tenants, n_rows=args.rows, seed=args.seed
    )
    if args.explain:
        return _cmd_serve_explain(args, tenants, out)
    # Snapshot before profiling so the report and the summary line both
    # describe *this command's* cache traffic, not the process lifetime.
    cache_snapshot = PROFILE_CACHE.snapshot()
    profile = profile_workload(
        tenants, platform=platform, design=design, jobs=args.jobs
    )
    if args.arrival == "closed":
        workload = ClosedLoopWorkload(
            tenants, n_clients=args.clients, n_requests=args.requests,
            think_ns=args.think_us * 1000.0, seed=args.seed,
        )
    else:
        rate = args.rate or 0.8 * profile.saturation_rate_qps()
        workload = OpenLoopWorkload(
            tenants, rate_qps=rate, n_requests=args.requests,
            arrival=args.arrival, seed=args.seed,
        )
    system = ServingSystem(
        profile, policy=args.policy, n_ports=args.ports,
        queue_depth=args.queue_depth, quantum=args.quantum,
        platform=platform, design=design, cache_snapshot=cache_snapshot,
    )
    report = system.run(workload)
    if args.format == "json":
        print(metrics_to_json(report.metrics), file=out)
    elif args.format == "csv":
        print(metrics_to_csv(report.metrics), file=out)
    else:
        print(render_slo_report(report), file=out)
        hits, misses = PROFILE_CACHE.delta_since(cache_snapshot)
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        print(
            f"profile cache: {hits} hits / {misses} misses this run "
            f"(hit rate {rate:.0%})", file=out,
        )
    return 0


#: ``--fault-plan`` name -> Poisson rates per ms at ``--intensity 1``.
_CLUSTER_FAULT_RATES: Dict[str, Dict[str, float]] = {
    "node-crash": {"node_crash": 3.0},
    "slow-node": {"node_slow": 4.0},
    "replica-lag": {"replica_lag": 4.0},
    "storm": {"node_crash": 2.0, "node_slow": 3.0, "replica_lag": 3.0},
}


def _cluster_fault_plan(kind: str, intensity: float, duration_ns: float,
                        n_nodes: int, seed: int):
    """Build the seeded node-fault plan behind ``--fault-plan``."""
    from .faults import FaultPlan

    if kind == "none" or intensity <= 0:
        return None
    rates = {name: rate * intensity
             for name, rate in _CLUSTER_FAULT_RATES[kind].items()}
    return FaultPlan.node_poisson(
        duration_ns=duration_ns, n_nodes=n_nodes,
        rates_per_ms=rates, seed=seed,
    )


def _cmd_cluster(args, out) -> int:
    from .cluster import ClusterSystem
    from .serve import OpenLoopWorkload, default_tenants, profile_workload

    if args.policy not in policy_names():
        raise _UsageError(
            f"repro cluster: unknown scheduler policy {args.policy!r} "
            f"(choose from {', '.join(policy_names())})"
        )
    if args.routing not in routing_names():
        raise _UsageError(
            f"repro cluster: unknown routing policy {args.routing!r} "
            f"(choose from {', '.join(routing_names())})"
        )
    n_nodes, n_requests = args.nodes, args.requests
    n_tenants, n_rows = args.tenants, args.rows
    if args.smoke:
        n_nodes, n_requests = min(n_nodes, 2), min(n_requests, 120)
        n_tenants, n_rows = min(n_tenants, 2), min(n_rows, 128)
    design = design_by_name(args.design)
    tenants = default_tenants(
        n_tenants=n_tenants, n_rows=n_rows, seed=args.seed
    )
    profile = profile_workload(tenants, design=design)
    rate = args.rate or 0.6 * n_nodes * profile.saturation_rate_qps()
    horizon_ns = 1e9 * n_requests / rate
    plan = _cluster_fault_plan(
        args.fault_plan, args.intensity, horizon_ns, n_nodes, args.seed
    )
    system = ClusterSystem(
        profile, n_nodes=n_nodes, replication=args.replication,
        routing=args.routing, policy=args.policy,
        queue_depth=args.queue_depth, design=design, fault_plan=plan,
        failover=not args.no_failover, hedging=not args.no_hedging,
    )
    workload = OpenLoopWorkload(
        tenants, rate_qps=rate, n_requests=n_requests, seed=args.seed
    )
    report = system.run(workload)
    if args.format == "json":
        print(metrics_to_json(report.merged), file=out)
        return 0
    if args.format == "csv":
        print(metrics_to_csv(report.merged), file=out)
        return 0
    print(render_cluster_report(report), file=out)
    # Every answered request must carry the profiling run's golden
    # answer — failover, hedging and CPU degradation change *where* a
    # query runs, never *what* it returns.
    golden = {(spec.name, template): profile.profile(spec.name, template).value
              for spec in tenants for template, _query in spec.templates}
    answered = [r for r in report.records
                if r.state in ("served", "degraded")]
    mismatched = sum(
        1 for r in answered if r.value != golden[(r.tenant, r.template)]
    )
    verdict = ("byte-identical to the fault-free golden answers"
               if not mismatched else f"{mismatched} MISMATCHED answers")
    print(f"answers: {len(answered)} checked, {verdict}", file=out)
    if args.smoke:
        if report.availability <= 0:
            print("smoke FAILED: availability is 0", file=out)
            return 1
        if mismatched:
            print("smoke FAILED: served answers drifted", file=out)
            return 1
        print(f"smoke ok: availability {report.availability:.1%}, "
              f"{report.fault_events} fault events, "
              f"{report.failover_routes} failover routes, "
              f"{report.degraded} degraded serves", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    from .bench.workloads import make_relation
    from .core.relmem import RelationalMemorySystem
    from .faults import DEFAULT_RECOVERY, NO_RECOVERY, FaultPlan
    from .query.executor import QueryExecutor
    from .query.queries import q1, q2, q4
    from .serve import (
        PROFILE_CACHE,
        OpenLoopWorkload,
        ServingSystem,
        default_tenants,
        profile_workload,
    )

    try:
        fault_rates = [float(r) for r in args.fault_rates.split(",") if r.strip()]
    except ValueError:
        raise _UsageError(f"repro chaos: bad --fault-rates {args.fault_rates!r}")
    n_rows, n_requests, n_rounds = args.rows, args.requests, 4
    if args.smoke:
        n_rows, n_requests, n_rounds = 128, 60, 2
        fault_rates = [0.0, 0.2]
    platform = _platform_from_overrides(args.config)
    design = design_by_name(args.design)

    # -- engine-level chaos: Poisson fault storm through the executor ----------
    table = make_relation(n_rows, seed=args.seed)
    system = RelationalMemorySystem(platform, design)
    executor = QueryExecutor(system)
    loaded = system.load_table(table)
    queries = [("project", q1("A3")),
               ("filter", q2(col="A1", sel_col="A2", k=0)),
               ("sum", q4("A1"))]
    plans = {}
    golden = {}
    for name, query in queries:
        var = system.register_var(
            loaded, list(query.columns()), activate=False,
            allow_noncontiguous=True,
        )
        plans[name] = (query, var)
        golden[name] = executor.run_rme(query, var).value
    injector = system.enable_faults(
        FaultPlan.poisson(
            duration_ns=250_000.0,
            rates_per_ms={"dram_bitflip": 200.0, "buffer_poison": 80.0,
                          "descriptor_corrupt": 80.0, "fetch_hang": 25.0,
                          "axi_stall": 60.0},
            seed=args.seed,
        ),
        DEFAULT_RECOVERY,
    )
    rows_out = []
    for round_idx in range(n_rounds):
        for name, (query, var) in plans.items():
            result = executor.run_rme(query, var)
            rows_out.append([
                str(round_idx), name, result.state,
                "yes" if result.value == golden[name] else "NO",
                f"{result.elapsed_ns:.0f}",
            ])
    print("engine chaos (Poisson fault storm, full recovery stack):", file=out)
    print(render_table(
        ["round", "template", "state", "answer ok", "elapsed ns"], rows_out,
    ), file=out)
    counters = ["fired_total", "rme_faults", "cpu_fallbacks", "crc_catches",
                "silent_corruptions"]
    print("  " + "  ".join(
        f"{name}={injector.stats.count(name)}" for name in counters
    ), file=out)
    print("", file=out)

    # -- serving-level sweep: availability with and without recovery -----------
    tenants = default_tenants(
        n_tenants=args.tenants, n_rows=n_rows, seed=args.seed
    )
    cache_snapshot = PROFILE_CACHE.snapshot()
    profile = profile_workload(tenants, platform=platform, design=design)
    rate = 0.5 * profile.saturation_rate_qps()
    rows_out = []
    for fault_rate in fault_rates:
        for label, recovery in (("recovery", DEFAULT_RECOVERY),
                                ("no-recovery", NO_RECOVERY)):
            workload = OpenLoopWorkload(
                tenants, rate_qps=rate, n_requests=n_requests, seed=args.seed
            )
            report = ServingSystem(
                profile, fault_rate=fault_rate, recovery=recovery,
                platform=platform, design=design,
            ).run(workload)
            rows_out.append([
                f"{fault_rate:g}", label,
                f"{100 * report.availability:.2f}",
                f"{report.p99_ns:.0f}",
                f"{100 * report.fallback_ratio:.2f}",
                str(report.failed), str(report.breaker_opens),
            ])
    print("serving sweep (same arrival schedule per point):", file=out)
    print(render_table(
        ["fault rate", "policy", "avail %", "p99 ns", "fallback %",
         "failed", "breaker opens"], rows_out,
    ), file=out)
    hits, misses = PROFILE_CACHE.delta_since(cache_snapshot)
    lookups = hits + misses
    rate_pct = hits / lookups if lookups else 0.0
    print(
        f"profile cache: {hits} hits / {misses} misses this run "
        f"(hit rate {rate_pct:.0%})", file=out,
    )
    return 0


def _cmd_perf(args, out) -> int:
    import pathlib

    from .bench.wallclock import run_wallclock

    mode = "quick" if args.quick else "full"
    print(f"fast-forward wall-clock benchmark ({mode} mode):", file=out)
    report = run_wallclock(
        quick=args.quick,
        scenarios=args.scenarios,
        min_fig06_speedup=args.min_speedup,
        progress=lambda line: print(f"  {line}", file=out),
        jobs=args.jobs,
    )
    print(report.render(), file=out)
    if args.profile:
        print(report.render_profile(), file=out)
    if args.output != "-":
        path = pathlib.Path(args.output)
        path.write_text(report.to_json() + "\n")
        print(f"wrote {path}", file=out)
    return 0


def _cmd_resources(args, out) -> int:
    design = design_by_name(args.design)
    report = estimate_resources(design)
    print(f"{design.name} on the ZCU102 (XCZU9EG) at {report.freq_mhz:g} MHz:",
          file=out)
    print(render_table(["metric", "value"], report.rows()), file=out)
    return 0


def _cmd_info(_args, out) -> int:
    p = ZCU102
    rows = [
        ["CPUs", f"{p.n_cpus} x Cortex-A53 @ {p.ps_freq_mhz:g} MHz"],
        ["L1-D / L2", f"{p.l1.size // 1024} KB / {p.l2.size // 1024} KB"],
        ["cache line", f"{p.cache_line} B"],
        ["PL clock", f"{p.pl_freq_mhz:g} MHz (max {p.pl_max_freq_mhz:g})"],
        ["PL BRAM", f"{p.bram_bytes / (1024 * 1024):.1f} MB"],
        ["AXI bus", f"{p.axi_bus_bytes} B/beat"],
        ["DRAM", f"{p.dram.n_banks} banks, {p.dram.row_buffer_bytes} B rows, "
                 f"{p.dram.bus_bytes} B beats @ {p.dram.t_beat:g} ns"],
        ["designs", ", ".join(d.name for d in ALL_DESIGNS)],
    ]
    print(render_table(["parameter", "value"], rows), file=out)
    return 0


def _usage_tip(exc: "_UsageError") -> str:
    """Extra pointer for bench/serve mistakes: the IR plan-dump flag.

    The engine list comes from the registry, so new engines show up
    here without touching the CLI.
    """
    if str(exc).startswith(("repro bench", "repro serve")):
        return ("; --explain previews the engine-annotated IR plan "
                f"(engines: {', '.join(engine_names())})")
    return ""


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """The console entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except _UsageError as exc:
        print(f"error: {exc} (see 'repro --help'{_usage_tip(exc)})", file=out)
        return 2
    if args.command is None:
        parser.print_help(file=out)
        return 2
    handler = {
        "figures": _cmd_figures,
        "bench": _cmd_bench,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "perf": _cmd_perf,
        "resources": _cmd_resources,
        "info": _cmd_info,
    }[args.command]
    try:
        return handler(args, out)
    except _UsageError as exc:
        print(f"error: {exc} (see 'repro --help'{_usage_tip(exc)})", file=out)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1
