"""The assembled system: CPU hierarchy + DRAM + RME + loaded relations.

:class:`RelationalMemorySystem` is the façade a database engine would link
against. It owns one simulated platform instance and provides:

* ``load_table`` — place a row-store in simulated DRAM;
* ``load_column_group`` — materialise a columnar copy (baseline only);
* ``register_var`` — create an ephemeral variable over a contiguous
  column group (the paper's ``register_var`` of Listing 4);
* ``activate`` — program the RME configuration port for a variable
  (cold); re-activating the already-active variable keeps the buffer hot;
* ``measure`` — price an access pattern (a list of scan segments) in
  simulated nanoseconds;
* ``flush_caches`` / ``reset_stats`` — experiment hygiene.

One RME instance serves one configured geometry at a time, like the
prototype: registering a different variable evicts the previous
projection (its next access is cold again).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..config import PlatformConfig, RMEConfig, ZCU102
from ..errors import CapacityError, ConfigurationError
from ..memsys.cpu import ScanDriver, ScanSegment
from ..memsys.dram import DRAM
from ..memsys.hierarchy import DRAMBackend, MemoryHierarchy
from ..memsys.memmap import MemoryMap, PhysicalMemory, Region
from ..rme.designs import MLP, DesignParams
from ..rme.engine import RMEngine
from ..rme.reorg_buffer import DEFAULT_DATA_CAPACITY
from ..sim import MetricsRegistry, Simulator, Tracer
from ..storage.column_table import ColumnTable
from ..storage.mvcc import VersionedRowTable
from ..storage.row_table import RowTable
from ..storage.schema import Schema
from .ephemeral import EphemeralVariable

#: Padding appended to every table region so bus-aligned RME bursts at the
#: last row never cross out of the mapped region.
_REGION_PAD = 64


@dataclass
class LoadedTable:
    """A row table resident in simulated DRAM."""

    table: RowTable
    region: Region
    versioned: Optional[VersionedRowTable] = None
    manager: Any = None  #: TransactionManager when versioned
    loaded_rows: int = 0

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def schema(self) -> Schema:
        return self.table.schema

    @property
    def base_addr(self) -> int:
        return self.region.base

    def current_ts(self) -> int:
        return self.manager.now_ts if self.manager is not None else 0


@dataclass
class LoadedIndex:
    """A B+-tree index whose serialised nodes live in simulated DRAM."""

    index: Any  #: BPlusTreeIndex
    region: Region
    table: "LoadedTable"

    @property
    def base_addr(self) -> int:
        return self.region.base

    def probe_points(self, key) -> List[Tuple[int, int]]:
        """(addr, nbytes) touches of a root-to-leaf probe."""
        node = self.index.node_bytes
        return [(self.base_addr + off, node) for off in self.index.probe_offsets(key)]

    def leaf_points(self, low, high) -> List[Tuple[int, int]]:
        node = self.index.node_bytes
        return [
            (self.base_addr + off, node)
            for off in self.index.leaf_offsets_for_range(low, high)
        ]


@dataclass
class LoadedColumnGroup:
    """A materialised columnar copy of one column group (baseline)."""

    name: str
    columns: List[str]
    region: Region
    width: int
    n_rows: int

    @property
    def base_addr(self) -> int:
        return self.region.base


class RelationalMemorySystem:
    """One simulated ZCU102-like platform with an RME in the PL."""

    def __init__(
        self,
        platform: PlatformConfig = ZCU102,
        design: DesignParams = MLP,
        buffer_capacity: int = DEFAULT_DATA_CAPACITY,
        n_cores: int = 1,
    ):
        platform.validate()
        if not 1 <= n_cores <= platform.n_cpus:
            raise ConfigurationError(
                f"n_cores must be in [1, {platform.n_cpus}], got {n_cores}"
            )
        self.platform = platform
        self.design = design
        self.sim = Simulator()
        self.memmap = MemoryMap(alignment=platform.cache_line)
        self.memory = PhysicalMemory(self.memmap)
        self.dram = DRAM(self.sim, platform.dram, self.memory)
        # Core 0 owns the shared L2 and the routing table; further cores
        # get private L1s over the same L2, backends and DRAM.
        self.hierarchy = MemoryHierarchy(self.sim, platform, core_id=0)
        self.hierarchies = [self.hierarchy]
        for core in range(1, n_cores):
            self.hierarchies.append(
                MemoryHierarchy(
                    self.sim,
                    platform,
                    shared_l2=self.hierarchy.l2,
                    shared_backends=self.hierarchy._backends,
                    core_id=core,
                )
            )
        self.rme = RMEngine(self.sim, platform, self.dram, design, buffer_capacity)
        self._dram_backend = DRAMBackend(self.dram)
        self._tables: Dict[str, LoadedTable] = {}
        self._active_var: Optional[EphemeralVariable] = None
        self._names = itertools.count()
        #: Optional :class:`repro.faults.FaultInjector`; see enable_faults.
        self.faults = None
        self.metrics = self._build_metrics()

    def _build_metrics(self) -> MetricsRegistry:
        """One registry addressing every component's StatSet by dotted path.

        The Requestor is recreated on every reconfiguration, so it is
        attached as a provider callable that resolves the current instance
        (or ``None`` before the first configuration).
        """
        registry = MetricsRegistry()
        registry.attach("dram", self.dram.stats)
        registry.attach("l2", self.hierarchy.l2.stats)
        for core, hierarchy in enumerate(self.hierarchies):
            registry.attach(f"cpu{core}", hierarchy.stats)
            registry.attach(f"cpu{core}.l1", hierarchy.l1.stats)
            registry.attach(f"cpu{core}.prefetcher", hierarchy.prefetcher.stats)
        registry.attach("rme", self.rme.stats)
        registry.attach("rme.trapper", self.rme.trapper.stats)
        registry.attach("rme.monitor", self.rme.monitor.stats)
        registry.attach("rme.fetch", self.rme.fetch_pool.stats)
        registry.attach("rme.buffer", self.rme.buffer.stats)
        registry.attach(
            "rme.requestor",
            lambda: self.rme.requestor.stats if self.rme.requestor else None,
        )
        return registry

    def enable_tracing(self, capacity: int = 100_000) -> Tracer:
        """Attach a :class:`~repro.sim.Tracer` so components emit events
        and spans; returns it. Call before the accesses you want to see.
        Tracing never changes simulated timing — only bookkeeping runs."""
        from ..sim.fastpath import TIMING_CACHE

        # A tracer forces the cycle-level path (spans must be emitted), so
        # signatures learned without one describe runs that can no longer
        # happen; drop them rather than let the cache grow stale entries.
        TIMING_CACHE.invalidate("tracer attached")
        tracer = Tracer(capacity=capacity)
        tracer.attach(self.sim)
        return tracer

    def enable_faults(self, plan, recovery=None):
        """Arm a fault-injection plan across every hardware component.

        ``plan`` is a :class:`repro.faults.FaultPlan`; ``recovery`` a
        :class:`repro.faults.RecoveryPolicy` (defaults to
        ``DEFAULT_RECOVERY``). Returns the shared
        :class:`~repro.faults.FaultInjector` so tests can inspect its log.
        Components check a single attribute when disarmed, so a system
        that never calls this is cycle-identical to one without the fault
        subsystem at all.
        """
        from ..faults import DEFAULT_RECOVERY, FaultInjector
        from ..sim.fastpath import TIMING_CACHE

        # Armed faults perturb timing arbitrarily; memoized fault-free
        # signatures are meaningless from here on.
        TIMING_CACHE.invalidate("fault plan armed")
        injector = FaultInjector(
            plan, recovery if recovery is not None else DEFAULT_RECOVERY
        )
        self.faults = injector
        self.dram.faults = injector
        self.rme.faults = injector
        self.rme.trapper.faults = injector
        self.rme.fetch_pool.faults = injector
        self.rme.fetch_pool.axi.faults = injector
        self.metrics.attach("faults", injector.stats)
        return injector

    # -- loading relations ------------------------------------------------------------
    def load_table(
        self, table: Union[RowTable, VersionedRowTable], manager: Any = None
    ) -> LoadedTable:
        """Copy a table's bytes into a DRAM region and route it.

        Accepts either a plain :class:`RowTable` or a
        :class:`VersionedRowTable` (whose physical versions, including the
        hidden timestamps, are what lands in memory — exactly the paper's
        base-data layout).
        """
        versioned = table if isinstance(table, VersionedRowTable) else None
        physical = versioned.table if versioned is not None else table
        if physical.n_rows == 0:
            raise ConfigurationError(f"table {physical.name!r} is empty")
        if physical.name in self._tables:
            raise ConfigurationError(f"table {physical.name!r} already loaded")
        region = self.memmap.map(
            f"table:{physical.name}", self._padded(physical.nbytes)
        )
        self.memory.write(region.base, physical.raw_bytes())
        self.hierarchy.add_backend(region, self._dram_backend)
        loaded = LoadedTable(
            table=physical,
            region=region,
            versioned=versioned,
            manager=manager,
            loaded_rows=physical.n_rows,
        )
        self._tables[physical.name] = loaded
        return loaded

    def _padded(self, nbytes: int) -> int:
        """Region size for ``nbytes`` of data: line-aligned plus slack, so
        both cache-line fills and bus-aligned RME bursts stay in-region."""
        line = self.platform.cache_line
        return -(-nbytes // line) * line + _REGION_PAD

    def sync_table(self, loaded: LoadedTable) -> None:
        """Re-copy a table's bytes after in-place writes or appends.

        Appends must fit the originally mapped region (load with headroom
        by padding the table before loading if needed).
        """
        data = loaded.table.raw_bytes()
        if len(data) + _REGION_PAD > loaded.region.size:
            raise CapacityError(
                f"table {loaded.name!r} grew past its mapped region; "
                "reload it into a fresh system"
            )
        self.memory.write(loaded.region.base, data)
        loaded.loaded_rows = loaded.table.n_rows

    def load_column_group(
        self, table: RowTable, columns: Sequence[str], name: str = ""
    ) -> LoadedColumnGroup:
        """Materialise a columnar copy of a group (the Columnar baseline).

        This is the copy HTAP systems maintain in software; the RME makes
        it unnecessary, but the benchmarks need it for comparison.
        """
        packed = table.project_bytes(columns)
        _offset, width = table.schema.column_group(columns)
        label = name or f"columnar:{table.name}:{'+'.join(columns)}:{next(self._names)}"
        region = self.memmap.map(label, self._padded(len(packed)))
        self.memory.write(region.base, packed)
        self.hierarchy.add_backend(region, self._dram_backend)
        return LoadedColumnGroup(
            name=label,
            columns=list(columns),
            region=region,
            width=width,
            n_rows=table.n_rows,
        )

    def load_index(
        self, loaded: LoadedTable, column: str, fanout: int = 16
    ) -> LoadedIndex:
        """Build a B+-tree over a key column and map its nodes into DRAM.

        The node array is what the index probe path touches; its content
        is the Python-side index structure (the simulator prices the
        accesses; the lookups answer from the structure).
        """
        from ..storage.index import BPlusTreeIndex

        index = BPlusTreeIndex.build(loaded.table, column, fanout)
        region = self.memmap.map(
            f"index:{loaded.name}:{column}:{next(self._names)}",
            self._padded(index.nbytes),
        )
        self.hierarchy.add_backend(region, self._dram_backend)
        return LoadedIndex(index=index, region=region, table=loaded)

    # -- ephemeral variables ---------------------------------------------------------------
    def register_var(
        self,
        loaded: LoadedTable,
        columns: Sequence[str],
        snapshot_ts: Optional[int] = None,
        activate: bool = True,
        allow_noncontiguous: bool = False,
        windowed: bool = False,
    ) -> EphemeralVariable:
        """Create an ephemeral variable over a column group.

        Mirrors Listing 4's ``register_var(the_table, num_fld1, ...)``:
        the geometry of the access is defined here; the RME starts
        projecting at the first access. With ``activate=False`` the
        variable is created without programming the configuration port
        (call :meth:`activate` before accessing it).

        By default the columns must be contiguous (the paper's prototype
        constraint). ``allow_noncontiguous=True`` enables the extended
        multi-run engine configuration — the paper's future-work item —
        which packs each row's runs back to back (Listing 2's layout).
        """
        from ..rme.multirun import MultiRMEConfig

        n_rows = loaded.table.n_rows
        if loaded.loaded_rows != n_rows:
            raise ConfigurationError(
                f"table {loaded.name!r} has unsynced appends; call sync_table()"
            )
        runs = loaded.schema.column_runs(columns)
        if len(runs) == 1:
            offset, width = runs[0]
            config = RMEConfig(
                row_size=loaded.schema.row_size,
                row_count=n_rows,
                col_width=width,
                col_offset=offset,
            )
        elif allow_noncontiguous:
            config = MultiRMEConfig(
                row_size=loaded.schema.row_size,
                row_count=n_rows,
                runs=tuple(runs),
            )
        else:
            # Raises SchemaError with the prototype-constraint explanation.
            loaded.schema.column_group(columns)
            raise AssertionError("unreachable")  # pragma: no cover
        # The alias region is sized exactly: no padding, so neither demand
        # accesses nor prefetches can reach past the projection.
        line = self.platform.cache_line
        region_size = -(-config.projected_bytes // line) * line
        region = self.memmap.map(f"eph:{next(self._names)}:{loaded.name}", region_size, kind="pl")
        self.hierarchy.add_backend(region, self.rme)
        var = EphemeralVariable(
            self, loaded, columns, config, region, snapshot_ts, windowed=windowed
        )
        if activate:
            self.activate(var)
        return var

    def register_filtered_var(
        self,
        loaded: LoadedTable,
        columns: Sequence[str],
        predicate_column: str,
        op: str,
        constant: int,
        snapshot_ts: Optional[int] = None,
        activate: bool = True,
    ) -> EphemeralVariable:
        """Selection pushdown: an ephemeral view of only the matching rows.

        The engine's comparator evaluates ``predicate_column OP constant``
        on every extracted group and packs only the rows that pass —
        the CPU never sees the rest. ``predicate_column`` must belong to
        the (contiguous) column group.
        """
        from ..rme.pushdown import HWSelection
        from .ephemeral import FilteredEphemeralVariable

        offset, width = loaded.schema.column_group(columns)
        group = loaded.schema.group_schema(columns)
        if predicate_column not in group:
            raise ConfigurationError(
                f"predicate column {predicate_column!r} must be inside the "
                f"projected group {list(columns)}"
            )
        selection = HWSelection(
            field_offset=group.offset_of(predicate_column),
            field_width=group.column(predicate_column).size,
            op=op,
            constant=constant,
        )
        return self._register(
            loaded, columns, snapshot_ts, activate,
            cls=FilteredEphemeralVariable, pushdown=selection,
        )

    def register_hw_aggregate(
        self,
        loaded: LoadedTable,
        column: str,
        func: str,
        predicate_column: Optional[str] = None,
        op: Optional[str] = None,
        constant: Optional[int] = None,
        activate: bool = True,
    ) -> EphemeralVariable:
        """Aggregation pushdown: SUM/COUNT/MIN/MAX computed in the engine.

        The result arrives as a single register line; only one cache line
        ever travels toward the CPU. An optional comparator pre-filters
        the rows (``predicate_column OP constant``); the predicate column
        is included in the projected group automatically.
        """
        from ..rme.pushdown import HWAggregation, HWSelection
        from .ephemeral import HWAggregateVariable

        columns = [column]
        if predicate_column is not None and predicate_column != column:
            columns = loaded.schema.covering_columns(
                sorted({column, predicate_column}, key=loaded.schema.index_of)
            )
        group = loaded.schema.group_schema(columns)
        predicate = None
        if predicate_column is not None:
            if op is None or constant is None:
                raise ConfigurationError(
                    "a pushdown predicate needs both op and constant"
                )
            predicate = HWSelection(
                field_offset=group.offset_of(predicate_column),
                field_width=group.column(predicate_column).size,
                op=op,
                constant=constant,
            )
        aggregation = HWAggregation(
            func=func,
            field_offset=group.offset_of(column),
            field_width=group.column(column).size,
            predicate=predicate,
        )
        return self._register(
            loaded, columns, None, activate,
            cls=HWAggregateVariable, pushdown=aggregation,
            region_bytes=HWAggregation.RESULT_BYTES,
        )

    def register_semijoin_var(
        self,
        loaded: LoadedTable,
        columns: Sequence[str],
        key_column: str,
        keys,
        snapshot_ts: Optional[int] = None,
        activate: bool = True,
    ) -> EphemeralVariable:
        """Join pre-processing: keep only rows whose key is in ``keys``.

        The build side of a semi-join (the filtered dimension's distinct
        keys) loads into the engine as a membership filter; the fact-side
        ephemeral view then contains only joinable rows — "supporting
        joins in hardware", per the paper's groundwork list.
        """
        from ..rme.pushdown import HWJoinFilter
        from .ephemeral import FilteredEphemeralVariable

        group = loaded.schema.group_schema(columns)
        if key_column not in group:
            raise ConfigurationError(
                f"join key {key_column!r} must be inside the projected group"
            )
        join_filter = HWJoinFilter(
            field_offset=group.offset_of(key_column),
            field_width=group.column(key_column).size,
            keys=frozenset(keys),
        )
        return self._register(
            loaded, columns, snapshot_ts, activate,
            cls=FilteredEphemeralVariable, pushdown=join_filter,
        )

    def register_hw_group_by(
        self,
        loaded: LoadedTable,
        agg_column: str,
        group_column: str,
        func: str = "sum",
        predicate_column: Optional[str] = None,
        op: Optional[str] = None,
        constant: Optional[int] = None,
        max_groups: int = 256,
        activate: bool = True,
    ) -> EphemeralVariable:
        """GROUP BY pushdown: a PL group table over a bounded key domain.

        Best paired with dictionary-encoded group keys (small, dense —
        the Section 4 encodings); the CPU receives one 16-byte entry per
        group instead of the whole column.
        """
        from ..rme.pushdown import HWGroupBy, HWSelection
        from .ephemeral import HWGroupByVariable

        wanted = {agg_column, group_column}
        if predicate_column is not None:
            wanted.add(predicate_column)
        columns = loaded.schema.covering_columns(
            sorted(wanted, key=loaded.schema.index_of)
        )
        group = loaded.schema.group_schema(columns)
        predicate = None
        if predicate_column is not None:
            if op is None or constant is None:
                raise ConfigurationError(
                    "a pushdown predicate needs both op and constant"
                )
            predicate = HWSelection(
                field_offset=group.offset_of(predicate_column),
                field_width=group.column(predicate_column).size,
                op=op,
                constant=constant,
            )
        group_by = HWGroupBy(
            group_offset=group.offset_of(group_column),
            group_width=group.column(group_column).size,
            func=func,
            agg_offset=group.offset_of(agg_column),
            agg_width=group.column(agg_column).size,
            predicate=predicate,
            max_groups=max_groups,
        )
        return self._register(
            loaded, columns, None, activate,
            cls=HWGroupByVariable, pushdown=group_by,
            region_bytes=group_by.result_buffer_bytes,
        )

    def _register(
        self,
        loaded: LoadedTable,
        columns: Sequence[str],
        snapshot_ts,
        activate: bool,
        cls,
        pushdown,
        region_bytes: Optional[int] = None,
    ) -> EphemeralVariable:
        """Shared plumbing for the pushdown variable flavours."""
        if loaded.versioned is not None:
            # The PL comparator would see every physical version, including
            # superseded ones, and silently disagree with snapshot reads.
            # Supporting this needs timestamp awareness in the engine
            # (fetch the hidden columns and compare against the snapshot) —
            # future work; fail loudly instead of answering wrong.
            raise ConfigurationError(
                "operator pushdown over MVCC-versioned tables is not "
                "supported; use a plain ephemeral variable"
            )
        offset, width = loaded.schema.column_group(columns)
        n_rows = loaded.table.n_rows
        if loaded.loaded_rows != n_rows:
            raise ConfigurationError(
                f"table {loaded.name!r} has unsynced appends; call sync_table()"
            )
        config = RMEConfig(
            row_size=loaded.schema.row_size,
            row_count=n_rows,
            col_width=width,
            col_offset=offset,
        )
        line = self.platform.cache_line
        size = region_bytes if region_bytes is not None else (
            -(-config.projected_bytes // line) * line
        )
        region = self.memmap.map(
            f"eph:{next(self._names)}:{loaded.name}", size, kind="pl"
        )
        self.hierarchy.add_backend(region, self.rme)
        var = cls(
            self, loaded, list(columns), config, region, snapshot_ts,
            pushdown=pushdown,
        )
        if activate:
            self.activate(var)
        return var

    def activate(self, var: EphemeralVariable) -> None:
        """Program the RME configuration port for this variable (cold).

        Re-activating the currently active variable is a no-op, keeping
        the reorganization buffer hot across queries on the same group.
        """
        if self._active_var is var:
            return
        self.rme.configure(
            var.config,
            var.loaded.base_addr,
            var.region.base,
            var.loaded.region.limit,
            windowed=var.windowed,
            pushdown=getattr(var, "pushdown", None),
        )
        self._active_var = var

    def deactivate(self) -> None:
        """Drop the active variable so its next activation reconfigures.

        The degraded-mode executor calls this after a fault: the engine's
        failed state is only cleared by :meth:`RMEngine.configure`, and a
        hot-buffer shortcut must not mask it.
        """
        self._active_var = None

    def is_active(self, var: EphemeralVariable) -> bool:
        """Whether this variable's geometry is the one the engine holds."""
        return self._active_var is var

    def warm_up(self, var: EphemeralVariable) -> float:
        """Activate and prefill the variable's projection; returns the ns
        the fetch pipeline took (useful to report transformation cost)."""
        self.activate(var)
        start = self.sim.now
        self.rme.prefill()
        self.sim.run()
        return self.sim.now - start

    # -- timing surface ----------------------------------------------------------------------
    def measure(self, segments: Sequence[ScanSegment]) -> float:
        """Run a scan pattern to completion; returns simulated ns."""
        driver = ScanDriver(self.sim, self.hierarchy)
        process = self.sim.process(driver.run(list(segments)), name="measure")
        self.sim.run()
        return process.value

    def measure_points(
        self, points: Sequence[Tuple[int, int]], compute_ns: float = 0.0
    ) -> float:
        """Time a pointer-chasing access sequence (index probes, row
        fetches); returns simulated ns."""
        driver = ScanDriver(self.sim, self.hierarchy)
        process = self.sim.process(
            driver.run_points(list(points), compute_ns), name="points"
        )
        self.sim.run()
        return process.value

    def measure_parallel(self, workloads: Sequence[Sequence]) -> List[float]:
        """Run one workload per core concurrently; returns per-core ns.

        Each workload is a list whose items are either
        :class:`~repro.memsys.cpu.ScanSegment` objects or ``(addr, nbytes)``
        point tuples (they may be mixed). Cores contend on the shared L2
        and DRAM exactly as the co-running HTAP experiment needs.
        """
        if len(workloads) > len(self.hierarchies):
            raise ConfigurationError(
                f"{len(workloads)} workloads for {len(self.hierarchies)} cores"
            )
        processes = []
        for core, work in enumerate(workloads):
            driver = ScanDriver(self.sim, self.hierarchies[core])
            segments = [w for w in work if isinstance(w, ScanSegment)]
            points = [w for w in work if not isinstance(w, ScanSegment)]

            def job(driver=driver, segments=segments, points=points):
                start = self.sim.now
                if segments:
                    yield from driver.run(segments)
                if points:
                    yield from driver.run_points(points)
                return self.sim.now - start

            processes.append(self.sim.process(job(), name=f"core{core}"))
        self.sim.run()
        return [process.value for process in processes]

    def flush_caches(self) -> None:
        """Cold CPU caches + stream table (between experiment runs)."""
        for hierarchy in self.hierarchies:
            hierarchy.flush()
        self.dram.reset_state()

    def reset_stats(self) -> None:
        """Zero the activity counters (between measured runs)."""
        self.hierarchy.reset_stats()
        self.dram.stats.reset()

    # -- introspection ----------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Core 0's Figure-7-style L1/L2 request and miss counters."""
        return self.hierarchy.cache_stats()

    @property
    def tables(self) -> List[str]:
        return sorted(self._tables)
