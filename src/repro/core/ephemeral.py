"""Ephemeral variables — the paper's software/hardware interface.

An ephemeral variable (Listings 2 and 4) is a pointer-like object over a
*contiguous column group* of a loaded row table. It has an address range
(the PL alias region) that never corresponds to main-memory data: CPU
accesses to it are trapped by the RME, which projects the group out of
the row-store on the fly.

The object carries both faces of the co-design:

* the **functional** face — ``values()``, ``__getitem__``, ``length`` —
  returns the actual tuples, applying MVCC visibility when the underlying
  table is versioned (Section 4);
* the **timing** face — ``scan_segment()`` — describes the packed access
  pattern the CPU performs, which the simulator prices through the
  Trapper.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..config import RMEConfig
from ..errors import QueryError
from ..memsys.cpu import ScanSegment
from ..memsys.memmap import Region
from ..storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .relmem import LoadedTable, RelationalMemorySystem


class EphemeralVariable:
    """A packed, never-materialised view of a column group."""

    def __init__(
        self,
        system: "RelationalMemorySystem",
        loaded: "LoadedTable",
        columns: Sequence[str],
        config: RMEConfig,
        region: Region,
        snapshot_ts: Optional[int] = None,
        windowed: bool = False,
        pushdown=None,
    ):
        #: Projection larger than the on-chip buffer, processed in windows.
        self.windowed = windowed
        #: Optional HWSelection/HWAggregation evaluated inside the engine.
        self.pushdown = pushdown
        self.system = system
        self.loaded = loaded
        self.columns = list(columns)
        self.config = config
        self.region = region
        self.snapshot_ts = snapshot_ts
        # Subset (not group) schema: multi-run views may have gaps in the
        # base row; the packed view is dense either way.
        self.group_schema: Schema = loaded.schema.subset_schema(columns)

    # -- identity ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.region.name

    @property
    def base_addr(self) -> int:
        return self.region.base

    @property
    def width(self) -> int:
        """Bytes per packed element (the column-group width C_An)."""
        return self.config.col_width

    @property
    def length(self) -> int:
        """Number of rows in the view (the ``cg.length`` of Listing 4)."""
        return self.config.row_count

    def __len__(self) -> int:
        return self.length

    @property
    def is_hot(self) -> bool:
        """True when this variable's projection sits in the buffer."""
        return self.system.is_active(self) and self.system.rme.is_hot

    # -- functional face ------------------------------------------------------------
    def values(self) -> List[Tuple[Any, ...]]:
        """Row-ordered tuples of the group's columns.

        For a versioned table, only versions visible at the variable's
        snapshot timestamp are returned — the paper's ephemeral variables
        "generate the (group of) column(s) that contain the rows that are
        valid at the time of the query".
        """
        raw = self.loaded.table.project_values(self.group_schema.names)
        mask = self._visibility_mask()
        if mask is None:
            return raw
        return [row for row, visible in zip(raw, mask) if visible]

    def column(self, name: str) -> List[Any]:
        if name not in self.group_schema:
            raise QueryError(
                f"column {name!r} is outside ephemeral view {self.name!r} "
                f"({self.group_schema.names})"
            )
        index = self.group_schema.index_of(name)
        return [row[index] for row in self.values()]

    def __getitem__(self, row_idx: int) -> Tuple[Any, ...]:
        """Physical-slot indexing, like ``cg[i]`` in Listing 4."""
        raw = self.loaded.table.project_values(self.group_schema.names)
        return raw[row_idx]

    def expected_packed_bytes(self) -> bytes:
        """The byte-exact packed projection (software golden reference)."""
        return self.loaded.table.project_bytes(self.group_schema.names)

    def _visibility_mask(self) -> Optional[List[bool]]:
        versioned = self.loaded.versioned
        if versioned is None:
            return None
        ts = self.snapshot_ts
        if ts is None:
            ts = self.loaded.current_ts()
        return versioned.visibility_mask(ts)

    # -- timing face -------------------------------------------------------------------
    def scan_segment(self, compute_ns: float = 0.0, passes: int = 1) -> List[ScanSegment]:
        """The packed scan the CPU performs over this view."""
        segment = ScanSegment(
            start=self.region.base,
            n_elems=self.length,
            elem_size=self.width,
            stride=self.width,
            compute_ns=compute_ns,
            name=f"scan:{self.name}",
        )
        return [segment] * passes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "hot" if self.is_hot else "cold"
        return (
            f"EphemeralVariable({self.name!r}, cols={self.columns}, "
            f"{self.length}x{self.width}B, {state})"
        )


class FilteredEphemeralVariable(EphemeralVariable):
    """An ephemeral view whose rows are selected *inside the engine*.

    The PL comparator drops non-matching rows before they reach the
    reorganization buffer, so the packed view contains only the rows
    satisfying the hardware predicate — selection pushdown, the first
    operator on the paper's groundwork list.
    """

    @property
    def hw_selection(self):
        return self.pushdown

    def values(self) -> List[Tuple[Any, ...]]:
        """Only the rows the hardware predicate keeps (after MVCC)."""
        rows = super().values()
        return [row for row in rows if self._row_matches(row)]

    def _row_matches(self, row: Tuple[Any, ...]) -> bool:
        packed = b"".join(
            col.ctype.pack(value)
            for col, value in zip(self.group_schema.columns, row)
        )
        return self.pushdown.matches(packed)

    @property
    def matched_length(self) -> int:
        """Rows in the filtered view (the engine's count register)."""
        return len(self.values())

    def scan_segment(self, compute_ns: float = 0.0, passes: int = 1) -> List[ScanSegment]:
        """The packed scan over *matching* rows only."""
        segment = ScanSegment(
            start=self.region.base,
            n_elems=self.matched_length,
            elem_size=self.width,
            stride=self.width,
            compute_ns=compute_ns,
            name=f"scan:{self.name}:filtered",
        )
        return [segment] * passes


class HWAggregateVariable(EphemeralVariable):
    """A one-line ephemeral "register" holding a PL-computed aggregate.

    Accessing it returns the aggregation result; the only memory traffic
    toward the CPU is a single cache line, available once the engine's
    fetch stream drains.
    """

    @property
    def hw_aggregation(self):
        return self.pushdown

    def expected_result(self) -> int:
        """The functional answer, computed from the stored values."""
        matching = super().values()
        agg = self.pushdown
        kept = [
            row for row in matching
            if agg.predicate is None or self._row_passes(row, agg.predicate)
        ]
        if agg.func == "count":
            return len(kept)
        samples = [self._field_of(row, agg) for row in kept]
        if not samples:
            raise QueryError(f"PL {agg.func} aggregate saw no matching rows")
        return {"sum": sum, "min": min, "max": max}[agg.func](samples)

    def _row_passes(self, row, predicate) -> bool:
        packed = self._pack_row(row)
        return predicate.matches(packed)

    def _field_of(self, row, agg) -> int:
        packed = self._pack_row(row)
        raw = packed[agg.field_offset : agg.field_offset + agg.field_width]
        return int.from_bytes(raw, "little", signed=True)

    def _pack_row(self, row) -> bytes:
        return b"".join(
            col.ctype.pack(value)
            for col, value in zip(self.group_schema.columns, row)
        )

    def scan_segment(self, compute_ns: float = 0.0, passes: int = 1) -> List[ScanSegment]:
        """One 8-byte register read per pass."""
        segment = ScanSegment(
            start=self.region.base,
            n_elems=1,
            elem_size=8,
            stride=8,
            compute_ns=compute_ns,
            name=f"read:{self.name}:register",
        )
        return [segment] * passes


class HWGroupByVariable(EphemeralVariable):
    """A register-table ephemeral view holding a PL-computed GROUP BY.

    The engine's group table streams out as packed (key, value) entries;
    the CPU reads ``n_groups`` 16-byte entries — data movement scales
    with the group cardinality, not the row count.
    """

    @property
    def hw_group_by(self):
        return self.pushdown

    def expected_result(self) -> dict:
        """The functional {key: aggregate} answer from the stored values."""
        cfg = self.pushdown
        accumulator = cfg.make_accumulator()
        for row in super().values():
            accumulator.feed(self._pack_row(row))
        return accumulator.result()

    def _pack_row(self, row) -> bytes:
        return b"".join(
            col.ctype.pack(value)
            for col, value in zip(self.group_schema.columns, row)
        )

    @property
    def n_groups(self) -> int:
        return len(self.expected_result())

    def scan_segment(self, compute_ns: float = 0.0, passes: int = 1) -> List[ScanSegment]:
        """Read the emitted group entries (16 bytes each)."""
        segment = ScanSegment(
            start=self.region.base,
            n_elems=max(1, self.n_groups),
            elem_size=16,
            stride=16,
            compute_ns=compute_ns,
            name=f"read:{self.name}:groups",
        )
        return [segment] * passes
