"""Access paths: the three ways a query can reach its column group.

* ``DIRECT_ROW`` — scan the row-oriented base table in main memory,
  touching one group-width element per row at row-size stride (the
  "Direct Access" baseline of Figure 6).
* ``COLUMNAR`` — scan a materialised column-store copy (the "Columnar
  Access" baseline): packed data, but it only exists because someone paid
  to build and maintain the copy.
* ``RME`` — scan the ephemeral variable through the Relational Memory
  Engine: packed data that never exists in DRAM. Cold or hot is *state*
  (is the reorganization buffer filled?), not a separate path.
* ``INDEX`` — probe a B+-tree on the row-store and fetch only the
  qualifying rows (Section 4: indexes stay useful "when we have a very
  selective query").
* ``PIM`` — evaluate the predicate inside the DRAM banks themselves
  (bank-level processing-in-memory): each bank filters its local rows
  into a selection bitmap and only bitmaps or aggregate register lines
  cross the AXI boundary. The fourth peer of the shootout.
"""

from __future__ import annotations

from enum import Enum


class AccessPath(Enum):
    """How a scan reaches its data."""

    DIRECT_ROW = "direct_row"
    COLUMNAR = "columnar"
    RME = "rme"
    INDEX = "index"
    PIM = "pim"

    @property
    def label(self) -> str:
        return {
            AccessPath.DIRECT_ROW: "Direct (row-store)",
            AccessPath.COLUMNAR: "Columnar (materialised copy)",
            AccessPath.RME: "Relational Memory",
            AccessPath.INDEX: "B+-tree index probe",
            AccessPath.PIM: "Bank-level PIM pushdown",
        }[self]
