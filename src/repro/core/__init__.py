"""The Relational Memory public API.

:class:`RelationalMemorySystem` assembles the whole platform (CPU-side
hierarchy, DRAM, RME) and loads relations into simulated memory;
:func:`register_var` / :meth:`RelationalMemorySystem.register_var` creates
*ephemeral variables* — the paper's lightweight abstraction (Listings 2
and 4) that exposes any contiguous column group of a row-store as if a
packed array of it existed in memory.
"""

from .access_path import AccessPath
from .ephemeral import (
    EphemeralVariable,
    FilteredEphemeralVariable,
    HWAggregateVariable,
    HWGroupByVariable,
)
from .relmem import (
    LoadedColumnGroup,
    LoadedIndex,
    LoadedTable,
    RelationalMemorySystem,
)

__all__ = [
    "AccessPath",
    "EphemeralVariable",
    "FilteredEphemeralVariable",
    "HWAggregateVariable",
    "HWGroupByVariable",
    "LoadedColumnGroup",
    "LoadedIndex",
    "LoadedTable",
    "RelationalMemorySystem",
]
