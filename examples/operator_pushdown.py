"""Operator pushdown — selection and aggregation inside the engine.

The paper's projection hardware "lays the groundwork for other relational
operators (selection, aggregation, group by, join pre-processing)". This
example builds Q5 (``SELECT SUM(A2) FROM S WHERE A1 < k``) four ways and
shows the data-movement collapse at each step of the ladder:

1. direct row scan                (moves whole rows)
2. RME projection, CPU filters    (moves the 2-column group)
3. RME + PL selection             (moves only matching rows)
4. RME + PL aggregation           (moves one register line)

Run:  python examples/operator_pushdown.py
"""

from repro import (
    Col,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
)
from repro.bench.report import render_table
from repro.bench.workloads import make_relation

N_ROWS = 4096
K = -500_000  # selects about a quarter of the rows


def main() -> None:
    table = make_relation(N_ROWS)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    executor = QueryExecutor(system)
    query = Query(
        name="q5", sql=f"SELECT SUM(A2) FROM S WHERE A1 < {K}",
        select=(), aggregate="sum", agg_expr=Col("A2"),
        predicate=Col("A1") < K,
    )

    direct = executor.run_direct(query, loaded)

    view = system.register_var(loaded, ["A1", "A2"])
    system.warm_up(view)
    system.flush_caches()
    projected = executor.run_rme(query, view)

    fview = system.register_filtered_var(loaded, ["A1", "A2"], "A1", "<", K)
    system.warm_up(fview)
    system.flush_caches()
    selected = executor.run_rme_pushdown(query, fview)

    agg = system.register_hw_aggregate(loaded, "A2", "sum",
                                       predicate_column="A1", op="<", constant=K)
    system.warm_up(agg)
    system.flush_caches()
    aggregated = executor.run_rme_hw_aggregate(agg)

    assert direct.value == projected.value == selected.value == aggregated.value
    print(f"{query.sql}\nanswer {direct.value}, "
          f"selectivity {direct.selectivity:.1%}, {N_ROWS} rows\n")

    bytes_per_row = 64
    group = 8
    match = direct.selectivity * group
    rows = [
        ["1. direct rows", direct.elapsed_ns, bytes_per_row * N_ROWS],
        ["2. PL projection (hot)", projected.elapsed_ns, group * N_ROWS],
        ["3. + PL selection (hot)", selected.elapsed_ns, round(match * N_ROWS)],
        ["4. + PL aggregation (hot)", aggregated.elapsed_ns, 64],
    ]
    print(render_table(
        ["strategy", "simulated ns", "bytes toward CPU"], rows,
    ))
    print("\nEach operator pushed into the engine removes another slice of "
          "data movement; the aggregate finally travels as one cache line.")


if __name__ == "__main__":
    main()
