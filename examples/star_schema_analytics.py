"""Star-schema analytics — a realistic workload tour.

A compact retail star schema: a wide fact table of orders whose dimension
columns are dictionary-encoded (narrow fixed-width codes the RME projects
natively, see Section 4 "Compression"), queried with SQL through the
paper's machinery:

* the measure columns are registered once as an ephemeral variable;
* a dashboard of analytical queries runs over it — the first pays the
  on-the-fly transformation, the rest stream from the hot buffer;
* a selective lookup dodges the streaming scans — the cost-based advisor
  weighs the B+-tree probe against the in-bank PIM fold.

Run:  python examples/star_schema_analytics.py
"""

import random

from repro import (
    AccessPath,
    Column,
    QueryExecutor,
    RelationalMemorySystem,
    RowTable,
    Schema,
    choose_access_path,
    int32,
    int64,
    parse_query,
)
from repro.bench.report import render_table
from repro.storage.compression import dictionary_encode
from repro.storage.schema import intn

N_ORDERS = 4096

REGIONS = ["na", "emea", "apac", "latam"]
PRODUCTS = [f"sku-{i:03d}" for i in range(24)]


def build_fact_table():
    rng = random.Random(17)
    regions = [rng.choice(REGIONS) for _ in range(N_ORDERS)]
    products = [rng.choice(PRODUCTS) for _ in range(N_ORDERS)]
    region_enc = dictionary_encode(regions, value_size=8)
    product_enc = dictionary_encode(products, value_size=8)

    schema = Schema([
        Column("order_id", int64()),
        Column("region_code", intn(region_enc.code_width)),
        Column("product_code", intn(product_enc.code_width)),
        Column("pad", intn(2)),             # keep the measures aligned
        Column("quantity", int32()),
        Column("unit_price", int32()),
        Column("discount", int32()),
        Column("tax", int32()),
        Column("shipping", int32()),
        Column("weight", int32()),
        Column("margin", int32()),
        Column("flags", int32()),
    ])
    fact = RowTable("orders", schema)
    for i in range(N_ORDERS):
        fact.append([
            i,
            region_enc.codes[i],
            product_enc.codes[i],
            0,
            rng.randint(1, 20),
            rng.randint(100, 9_999),
            rng.randint(0, 30),
            rng.randint(0, 500),
            rng.randint(0, 900),
            rng.randint(1, 5_000),
            rng.randint(-500, 2_000),
            0,
        ])
    return fact, region_enc, product_enc


DASHBOARD = [
    "SELECT SUM(quantity * unit_price) FROM orders",
    "SELECT AVG(discount) FROM orders WHERE quantity > 10",
    "SELECT SUM(quantity) FROM orders WHERE discount > 15 GROUP BY region_code",
    "SELECT STD(unit_price) FROM orders",
]


def main() -> None:
    fact, region_enc, product_enc = build_fact_table()
    print(f"fact table: {fact.n_rows} orders x {fact.row_size} B "
          f"({fact.nbytes / 1024:.0f} KiB); dimension codes: "
          f"region {region_enc.code_width} B, product {product_enc.code_width} B")

    system = RelationalMemorySystem()
    loaded = system.load_table(fact)
    executor = QueryExecutor(system)

    # One ephemeral view backs the whole dashboard: the group covering the
    # dimension codes and measures (everything but order_id and the tail).
    view_columns = ["region_code", "product_code", "pad",
                    "quantity", "unit_price", "discount"]
    view = system.register_var(loaded, view_columns)
    print(f"ephemeral view: {view.width} of {fact.row_size} bytes per row "
          f"({view.config.projectivity:.0%} projectivity)\n")

    rows = []
    for sql in DASHBOARD:
        query = parse_query(sql)
        direct = executor.run_direct(query, loaded)
        rme = executor.run_rme(query, view)
        assert direct.value == rme.value
        shown = rme.value if not isinstance(rme.value, dict) else (
            {region_enc.dictionary[k]: v for k, v in sorted(rme.value.items())}
        )
        rows.append([
            sql if len(sql) < 58 else sql[:55] + "...",
            rme.state,
            round(direct.elapsed_ns),
            round(rme.elapsed_ns),
            f"{direct.elapsed_ns / rme.elapsed_ns:.1f}x",
        ])
        print(f"{sql}\n  -> {shown}")
    print()
    print(render_table(
        ["dashboard query", "RME state", "direct ns", "RME ns", "speedup"],
        rows,
    ))

    # --- the groundwork operators, in hardware -------------------------------
    # GROUP BY pushdown: the dictionary-coded region key fits the PL group
    # table, so revenue-by-region arrives as four 16-byte entries.
    gvar = system.register_hw_group_by(loaded, "quantity", "region_code", "sum",
                                       predicate_column="discount", op=">",
                                       constant=15)
    grouped = executor.run_rme_hw_group_by(gvar)
    again = executor.run_rme_hw_group_by(gvar)
    named = {region_enc.dictionary[k]: v for k, v in sorted(grouped.value.items())}
    print(f"\nGROUP BY pushdown: {named}")
    print(f"  cold {grouped.elapsed_ns:,.0f} ns (stream + table emit), "
          f"hot {again.elapsed_ns:,.0f} ns ({gvar.n_groups} entries)")

    # Semi-join pushdown: filter the dimension in software, push its keys.
    apac_emea = frozenset(
        code for code, name in enumerate(region_enc.dictionary)
        if name in ("apac", "emea")
    )
    jvar = system.register_semijoin_var(
        loaded, view_columns, "region_code", apac_emea
    )
    system.warm_up(jvar)
    joinable = jvar.matched_length
    print(f"semi-join pushdown: {joinable}/{fact.n_rows} orders joinable "
          f"with the apac/emea dimension slice "
          f"(engine count register: {system.rme.match_count})")

    # A selective point lookup avoids the streaming scans entirely: the
    # advisor weighs the B+-tree probe against the rank-parallel in-bank
    # fold, and at this table size the banks answer without moving a row.
    # The index stays the cheapest path that *materializes* the rows.
    index = system.load_index(loaded, "order_id")
    lookup = parse_query("SELECT SUM(unit_price) FROM orders WHERE order_id < 16")
    choice = choose_access_path(lookup, loaded, selectivity=16 / N_ORDERS,
                                index=index.index)
    measured = executor.run_index(lookup, loaded, index)
    print(f"\nselective lookup: optimizer picks {choice.best.value} "
          f"({measured.elapsed_ns:,.0f} ns via the index, "
          f"{measured.selectivity:.2%} selective)")
    assert choice.best in (AccessPath.INDEX, AccessPath.PIM)
    software = {p: ns for p, ns in choice.estimates_ns.items()
                if p is not AccessPath.PIM}
    assert min(software, key=software.get) is AccessPath.INDEX
    print("\nOne row-store served transactional-style lookups via the index "
          "and the whole analytical dashboard via Relational Memory.")


if __name__ == "__main__":
    main()
