"""Access-path advisor — the optimizer choosing per query (Section 4).

"At runtime, the query optimizer can decide to execute one query with
indexes and another query with columns, alternating between a
row-at-a-time and column-at-a-time execution strategy depending on what
is the best fit for each query."

The advisor prices every access path for each of the seven benchmark
queries with the analytical model, picks the cheapest, then *validates*
the decision by actually running the query on the simulated platform.
A second part sweeps a predicate's selectivity with a B+-tree available,
showing the index/column crossover of Section 4.

Run:  python examples/access_path_advisor.py
"""

from repro import (
    AccessPath,
    Col,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
    choose_access_path,
)
from repro.bench.report import render_table
from repro.bench.workloads import make_relation
from repro.query.queries import relational_memory_benchmark


def main() -> None:
    table = make_relation(n_rows=2048, n_cols=16, col_width=4)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    executor = QueryExecutor(system)

    rows = []
    agreements = 0
    for query in relational_memory_benchmark():
        choice = choose_access_path(query, loaded)
        est = {p.value: v for p, v in choice.estimates_ns.items()}

        # Validate by measurement: direct vs. RME (fresh variable = cold).
        var = system.register_var(loaded, query.columns())
        measured_rme = executor.run_rme(query, var).elapsed_ns
        measured_direct = executor.run_direct(query, loaded).elapsed_ns
        actual_best = (AccessPath.RME if measured_rme < measured_direct
                       else AccessPath.DIRECT_ROW)
        agreements += actual_best is choice.best

        rows.append([
            query.name,
            "+".join(query.columns()),
            choice.best.value,
            round(est["direct_row"]),
            round(est["rme"]),
            round(measured_direct),
            round(measured_rme),
            "yes" if actual_best is choice.best else "NO",
        ])
        print(f"{query.name}: {query.sql}")
        print(f"   -> {choice.best.value}: {choice.reason}")

    print()
    print(render_table(
        ["query", "columns", "choice", "est direct", "est rme",
         "meas direct", "meas rme", "agrees"],
        rows,
    ))
    print(f"\nmodel agreed with measurement on {agreements}/7 queries")

    # --- part two: index vs. columns, alternating by selectivity ------------
    print("\nWith a B+-tree on A1, the optimizer alternates per query:")
    index = system.load_index(loaded, "A1")
    sweep_rows = []
    for cut in (-995_000, -900_000, -500_000, 500_000):
        query = Query(
            name=f"k={cut}", sql=f"SELECT SUM(A2) FROM S WHERE A1 < {cut}",
            select=(), aggregate="sum", agg_expr=Col("A2"),
            predicate=Col("A1") < cut,
        )
        measured = executor.run_index(query, loaded, index)
        choice = choose_access_path(
            query, loaded, selectivity=measured.selectivity, index=index.index
        )
        sweep_rows.append([
            f"{measured.selectivity:.2%}",
            round(measured.elapsed_ns),
            choice.best.value,
        ])
    print(render_table(["selectivity", "index ns", "optimizer picks"], sweep_rows))
    print("\nSelective point queries go to the index; analytical scans go "
          "to Relational Memory — one row-store, both strategies.")


if __name__ == "__main__":
    main()
