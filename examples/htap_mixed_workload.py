"""HTAP mixed workload — MVCC transactions under analytical scans.

Section 4 of the paper: the base data stays row-oriented and writable
(new versions are appended, validity is tracked with begin/end
timestamps), while ephemeral variables give analytics a packed columnar
view of exactly the rows valid at the query's snapshot — no fractured
mirrors, no background conversion pipeline.

The script runs an order-processing workload:
  * OLTP side: inserts, balance updates, a write-write conflict;
  * OLAP side: revenue aggregation through an ephemeral variable, at
    a historical snapshot and at "now", with timing vs. the row scan.

Run:  python examples/htap_mixed_workload.py
"""

import random

from repro import (
    Col,
    Column,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
    Schema,
    TransactionManager,
    VersionedRowTable,
    WriteConflictError,
    int64,
)
from repro.bench.report import render_table


def build_orders() -> tuple:
    schema = Schema([
        Column("order_id", int64()),
        Column("customer", int64()),
        Column("amount", int64()),
        Column("status", int64()),   # 0 = open, 1 = shipped
    ])
    table = VersionedRowTable("orders", schema)
    manager = TransactionManager(table)
    rng = random.Random(11)
    for order_id in range(2000):
        manager.insert([order_id, rng.randint(0, 99), rng.randint(5, 500), 0])
    return table, manager


def revenue_query() -> Query:
    return Query(
        name="revenue",
        sql="SELECT SUM(amount) FROM orders WHERE status = 0",
        select=(),
        aggregate="sum",
        agg_expr=Col("amount"),
        predicate=Col("status").eq(0),
    )


def main() -> None:
    table, manager = build_orders()
    ts_loaded = manager.now_ts
    print(f"{table.live_count()} live orders, {table.n_versions} versions, "
          f"logical time {ts_loaded}")

    # --- OLTP traffic: updates append versions ------------------------------
    for order_id in range(0, 500):
        row = list(table.snapshot_values(manager.now_ts)[0])  # template
        manager.update(order_id, [order_id, row[1], row[2], 1])  # ship it
    print(f"shipped 500 orders -> {table.n_versions} physical versions")

    # A write-write conflict: first committer wins, the other aborts cleanly.
    t1 = manager.begin()
    t2 = manager.begin()
    t1.update(600, [600, 0, 999, 0])
    t2.update(600, [600, 0, 111, 0])
    t1.commit()
    try:
        t2.commit()
    except WriteConflictError as exc:
        print(f"conflict detected as designed: {exc}")

    # --- OLAP side: load the versioned base data and project it -------------
    system = RelationalMemorySystem()
    loaded = system.load_table(table, manager=manager)
    executor = QueryExecutor(system)
    query = revenue_query()

    # The ephemeral variable regenerates only the versions valid *now*.
    live_view = system.register_var(loaded, ["amount", "status"])
    now = executor.run_rme(query, live_view)

    # A second variable pinned at the load-time snapshot: time travel.
    old_view = system.register_var(
        loaded, ["amount", "status"], snapshot_ts=ts_loaded, activate=False
    )
    open_then = sum(a for a, s in old_view.values() if s == 0)
    open_now = now.value

    direct = executor.run_direct(query, loaded)
    hot = executor.run_rme(query, live_view)

    print()
    print(render_table(
        ["metric", "value"],
        [
            ["open revenue at load snapshot", open_then],
            ["open revenue now (RME)", open_now],
            ["open revenue now (direct scan)", direct.value],
        ],
    ))
    assert direct.value == now.value
    assert open_then > open_now  # shipped orders left the predicate

    print()
    print(render_table(
        ["analytics path", "simulated ns"],
        [
            ["direct row scan (all versions)", round(direct.elapsed_ns)],
            ["RME cold", round(now.elapsed_ns)],
            ["RME hot", round(hot.elapsed_ns)],
        ],
    ))
    print("\nAnalytics ran against a consistent snapshot while transactions "
          "kept appending versions to the same row-store.")


if __name__ == "__main__":
    main()
