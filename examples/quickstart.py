"""Quickstart — the paper's Listings 1-4, end to end.

Builds the 96-byte-row table of Listing 1, registers an ephemeral
variable over the numeric column group (Listing 2 / ``register_var`` of
Listing 4), evaluates the sample analytical query

    SELECT sum(num_fld1 * num_fld4) FROM the_table WHERE num_fld3 > 10;

and compares the three access paths: direct row access, a materialised
columnar copy, and Relational Memory (cold, then hot).

Run:  python examples/quickstart.py
"""

from repro import (
    Col,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
)
from repro.bench.report import render_table
from repro.bench.workloads import make_listing1_table


def main() -> None:
    # --- Listing 1: struct row the_table[] ---------------------------------
    table = make_listing1_table(n_rows=4096)
    print(f"loaded {table.n_rows} rows of {table.row_size} bytes "
          f"({table.nbytes / 1024:.0f} KiB row-store)")

    system = RelationalMemorySystem()
    loaded = system.load_table(table)

    # --- Listing 2/4: the ephemeral column group ----------------------------
    # The prototype RME projects contiguous groups, so the covering run
    # num_fld1..num_fld4 (32 of 96 bytes) backs the query's three columns.
    cg = system.register_var(
        loaded, ["num_fld1", "num_fld2", "num_fld3", "num_fld4"]
    )
    print(f"ephemeral variable: {cg!r}")
    print(f"  geometry: R={cg.config.row_size} N={cg.config.row_count} "
          f"C={cg.config.col_width} O={cg.config.col_offset} "
          f"(projectivity {cg.config.projectivity:.0%})")

    # --- Listing 3: the query ------------------------------------------------
    query = Query(
        name="listing3",
        sql="SELECT SUM(num_fld1 * num_fld4) FROM the_table WHERE num_fld3 > 10",
        select=(),
        aggregate="sum",
        agg_expr=Col("num_fld1") * Col("num_fld4"),
        predicate=Col("num_fld3") > 10,
    )

    executor = QueryExecutor(system)
    direct = executor.run_direct(query, loaded)
    columnar_copy = system.load_column_group(
        table, ["num_fld1", "num_fld2", "num_fld3", "num_fld4"]
    )
    columnar = executor.run_columnar(query, loaded, columnar_copy)
    rme_cold = executor.run_rme(query, cg)
    rme_hot = executor.run_rme(query, cg)

    assert direct.value == columnar.value == rme_cold.value == rme_hot.value
    print(f"\nanswer: {direct.value}  "
          f"(selectivity {direct.selectivity:.1%}, {direct.rows_scanned} rows)")

    rows = [
        ["Direct (row-store)", direct.elapsed_ns, 1.0],
        ["Columnar copy", columnar.elapsed_ns, columnar.elapsed_ns / direct.elapsed_ns],
        ["RME cold (transforming)", rme_cold.elapsed_ns, rme_cold.elapsed_ns / direct.elapsed_ns],
        ["RME hot (buffered)", rme_hot.elapsed_ns, rme_hot.elapsed_ns / direct.elapsed_ns],
    ]
    print()
    print(render_table(["access path", "simulated ns", "vs direct"], rows))
    print("\nThe hot RME scan matches the columnar copy without ever "
          "materialising the columns in memory.")

    # --- telemetry teaser ---------------------------------------------------
    trapper = system.metrics.statset("rme.trapper")
    print(f"\ntrapper latency p50/p99: "
          f"{trapper.percentile('latency_ns', 50):,.0f} / "
          f"{trapper.percentile('latency_ns', 99):,.0f} ns over "
          f"{trapper.count('requests')} trapped lines")
    print("To see *why* (spans, per-lane timelines, Perfetto export), "
          "re-run under tracing:\n"
          "  system.enable_tracing()  /  python -m repro trace ...\n"
          "— see the README's Observability section and "
          "docs/observability.md.")


if __name__ == "__main__":
    main()
