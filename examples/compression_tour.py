"""Compression tour — Section 4's encodings on RME-projectable columns.

Dictionary and delta (frame-of-reference) encodings keep columns
fixed-width, so they can live inside the row-store and be projected by
the RME like any other column group — and a narrower encoded column makes
the projected group smaller, which directly speeds the scan up. RLE
compresses better on sorted data but breaks fixed-width addressing (the
paper's reason it is "less frequently applicable").

The script encodes a low-cardinality 8-byte column down to 1 byte,
stores both versions in row-stores, and times the same aggregate through
the RME on each.

Run:  python examples/compression_tour.py
"""

import random

from repro import (
    Col,
    Column,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
    RowTable,
    Schema,
    int64,
)
from repro.bench.report import render_table
from repro.storage.compression import delta_encode, dictionary_encode, rle_encode
from repro.storage.schema import intn

N_ROWS = 4096


def main() -> None:
    rng = random.Random(3)
    # A low-cardinality dimension column (say, 12 product categories) plus
    # a monotonically increasing timestamp-like column.
    categories = [rng.randint(0, 11) for _ in range(N_ROWS)]
    timestamps = [1_700_000_000 + i * rng.randint(1, 5) for i in range(N_ROWS)]

    # --- encodings, sizes ---------------------------------------------------
    dict_enc = dictionary_encode(categories, value_size=8)
    delta_enc = delta_encode(timestamps, value_size=8, frame_size=128)
    rle_sorted = rle_encode(sorted(categories), value_size=8)
    rle_raw = rle_encode(categories, value_size=8)

    print(render_table(
        ["encoding", "plain B", "encoded B", "ratio"],
        [
            ["dictionary (12 distinct)", dict_enc.plain_bytes,
             dict_enc.encoded_bytes, round(dict_enc.ratio, 2)],
            ["delta / FOR (timestamps)", delta_enc.plain_bytes,
             delta_enc.encoded_bytes, round(delta_enc.ratio, 2)],
            ["RLE on sorted data", rle_sorted.plain_bytes,
             rle_sorted.encoded_bytes, round(rle_sorted.ratio, 2)],
            ["RLE on unsorted data", rle_raw.plain_bytes,
             rle_raw.encoded_bytes, round(rle_raw.ratio, 2)],
        ],
    ))
    assert dict_enc.decode() == categories
    assert delta_enc.decode() == timestamps

    # --- the co-design payoff: scan the encoded column through the RME -------
    plain_schema = Schema([Column("cat", int64()), Column("pad", int64()),
                           Column("other", int64())] +
                          [Column(f"f{i}", int64()) for i in range(5)])
    plain = RowTable("plain", plain_schema)
    for c in categories:
        plain.append([c, 0, 0, 0, 0, 0, 0, 0])

    code_type = intn(dict_enc.code_width)
    encoded_schema = Schema([Column("cat_code", code_type), Column("pad", int64()),
                             Column("other", int64())] +
                            [Column(f"f{i}", int64()) for i in range(5)])
    encoded = RowTable("encoded", encoded_schema)
    for code in dict_enc.codes:
        encoded.append([code, 0, 0, 0, 0, 0, 0, 0])

    def count_query(col: str) -> Query:
        return Query(name="hot_cat", sql=f"SELECT SUM({col}) FROM t",
                     select=(), aggregate="sum", agg_expr=Col(col))

    rows = []
    for label, table, col in (("plain 8B column", plain, "cat"),
                              ("dictionary 1B codes", encoded, "cat_code")):
        system = RelationalMemorySystem()
        loaded = system.load_table(table)
        var = system.register_var(loaded, [col])
        executor = QueryExecutor(system)
        cold = executor.run_rme(count_query(col), var)
        hot = executor.run_rme(count_query(col), var)
        rows.append([label, var.config.col_width,
                     round(cold.elapsed_ns), round(hot.elapsed_ns)])

    print()
    print(render_table(
        ["stored column", "group width B", "RME cold ns", "RME hot ns"], rows
    ))
    print("\nNarrow dictionary codes shrink the projected group, so the "
          "same aggregate moves 8x less data through the engine.")


if __name__ == "__main__":
    main()
