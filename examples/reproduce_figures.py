"""Reproduce every table and figure of the paper's evaluation in one run.

Prints the series behind Figures 1 and 6-13 plus Table 3, at a reduced
row count so the whole sweep finishes in a couple of minutes. The
benchmark harness under ``benchmarks/`` runs the same drivers with shape
assertions; this script is the human-readable tour.

Run:  python examples/reproduce_figures.py [n_rows]
"""

import sys
import time

from repro.bench import (
    fig01_projectivity,
    fig06_q1_designs,
    fig07_cache_stats,
    fig08_offset_sweep,
    fig09_projection_colsize,
    fig10_projection_rowsize,
    fig11_agg_colsize,
    fig12_agg_rowsize,
    fig13_q7_locality,
    render_figure,
    table3_resources,
)
from repro.bench.report import render_table


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    offsets = list(range(0, 61, 1))

    jobs = [
        ("Figure 1", lambda: render_figure(fig01_projectivity())),
        ("Figure 6", lambda: render_figure(
            fig06_q1_designs(n_rows=n_rows), normalized_to="Direct")),
        ("Figure 7", lambda: render_figure(fig07_cache_stats(n_rows=2 * n_rows))),
        ("Figure 8", lambda: render_figure(
            fig08_offset_sweep(n_rows=max(128, n_rows // 4), offsets=offsets))),
        ("Figure 9", lambda: render_figure(fig09_projection_colsize(n_rows=n_rows))),
        ("Figure 10", lambda: render_figure(fig10_projection_rowsize(n_rows=n_rows))),
        ("Figure 11", lambda: render_figure(fig11_agg_colsize(n_rows=n_rows))),
        ("Figure 12", lambda: render_figure(fig12_agg_rowsize(n_rows=n_rows))),
        ("Figure 13a", lambda: render_figure(
            fig13_q7_locality(n_rows=n_rows, sweep="col"))),
        ("Figure 13b", lambda: render_figure(
            fig13_q7_locality(n_rows=n_rows, sweep="row"))),
    ]
    for label, job in jobs:
        start = time.time()
        text = job()
        print(f"\n{'=' * 72}\n{text}")
        print(f"[{label} regenerated in {time.time() - start:.1f}s]")

    reports = table3_resources()
    labels = [row_label for row_label, _ in reports["MLP"].rows()]
    rows = [[label] + [reports[name].rows()[i][1] for name in reports]
            for i, label in enumerate(labels)]
    print(f"\n{'=' * 72}")
    print("Table 3: post-implementation estimates per design revision")
    print(render_table(["metric"] + list(reports), rows))


if __name__ == "__main__":
    main()
