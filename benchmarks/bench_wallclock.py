"""Wall-clock trajectory of the fast-forward replay layer.

Unlike the figure benchmarks (which assert *simulated* nanoseconds and
run the driver once), this one times *host* execution of representative
workloads under both simulation modes and asserts the fast-forward
contract end to end:

* every scenario's simulated observables are bit-identical between the
  cycle-level and fast-forwarded runs (``run_wallclock`` raises
  otherwise);
* the fig06 Q1 design sweep — the flagship cycle-level experiment — is
  at least ``FIG06_MIN_SPEEDUP`` (3x) faster wall-clock with the fast
  path on.

The machine-readable report lands in ``BENCH_wallclock.json`` next to
the working directory, same as ``python -m repro perf``. Set
``REPRO_PERF_QUICK=1`` to run the small CI scales (equality still
asserted, speedup floor waived — quick scales are too small for a
stable ratio).
"""

import os
import pathlib

from repro.bench.wallclock import FIG06_MIN_SPEEDUP, run_wallclock

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")


def bench_wallclock_fastforward(benchmark):
    report = benchmark.pedantic(
        run_wallclock, kwargs={"quick": QUICK}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    out = pathlib.Path("BENCH_wallclock.json")
    out.write_text(report.to_json() + "\n")
    print(f"wrote {out}")

    for timing in report.scenarios:
        assert timing.identical, f"{timing.name}: simulated results diverged"
    if not QUICK:
        assert report.scenario("fig06").speedup >= FIG06_MIN_SPEEDUP
