"""Extension — GROUP BY pushdown and join pre-processing in the engine.

The last two operators on the paper's groundwork list:

* **GROUP BY** — a bounded PL group table keyed by a dictionary-coded
  dimension: the CPU receives one 16-byte (key, aggregate) entry per
  group instead of the whole measure column (a Q6-style query collapses
  from a full scan to a register-table read);
* **join pre-processing** — a semi-join membership filter: the filtered
  dimension's keys load into the engine, which drops unjoinable fact
  rows before they reach the memory hierarchy.
"""

import random

from conftest import N_ROWS, run_once

from repro import (
    Col,
    Column,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
    RowTable,
    Schema,
    int32,
    int64,
)
from repro.bench.report import render_table
from repro.storage.schema import intn

N_REGIONS = 8


def make_fact(n_rows, seed=5):
    schema = Schema([
        Column("region", intn(1)),
        Column("pad", intn(3)),
        Column("sales", int32()),
        Column("other", int64()),
    ])
    table = RowTable("fact", schema)
    rng = random.Random(seed)
    for _ in range(n_rows):
        table.append([rng.randint(0, N_REGIONS - 1), 0,
                      rng.randint(-100, 100), 0])
    return table


def sweep(n_rows):
    table = make_fact(n_rows)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    executor = QueryExecutor(system)

    groupby_sql = Query(
        name="q6ish", sql="SELECT SUM(sales) FROM fact GROUP BY region",
        select=(), aggregate="sum", agg_expr=Col("sales"), group_by="region",
    )
    # Software group-by over an ephemeral view of (region..sales).
    view = system.register_var(loaded, ["region", "pad", "sales"])
    system.warm_up(view)
    system.flush_caches()
    software = executor.run_rme(groupby_sql, view)

    # Hardware group table.
    gvar = system.register_hw_group_by(loaded, "sales", "region", "sum")
    hw_cold = executor.run_rme_hw_group_by(gvar)
    hw_hot = executor.run_rme_hw_group_by(gvar)
    assert hw_cold.value == software.value

    # Semi-join: keep rows joining a 2-of-8 dimension slice.
    keys = {2, 5}
    jvar = system.register_semijoin_var(
        loaded, ["region", "pad", "sales"], "region", keys
    )
    fill_ns = system.warm_up(jvar)
    joinable = system.rme.match_count
    expected = sum(1 for row in table.scan() if row[0] in keys)
    assert joinable == expected

    return {
        "rows": [
            ["sw GROUP BY (RME hot)", software.elapsed_ns],
            ["PL GROUP BY cold", hw_cold.elapsed_ns],
            ["PL GROUP BY hot", hw_hot.elapsed_ns],
        ],
        "software": software.elapsed_ns,
        "hw_hot": hw_hot.elapsed_ns,
        "joinable": joinable,
        "n_rows": n_rows,
        "fill_ns": fill_ns,
    }


def bench_ext_groupby_join(benchmark):
    result = run_once(benchmark, sweep, n_rows=N_ROWS)
    print()
    print(render_table(["strategy", "simulated ns"], result["rows"]))
    print(f"semi-join: {result['joinable']}/{result['n_rows']} fact rows "
          f"joinable, filtered in-engine during a {result['fill_ns']:,.0f} ns fill")

    # The hot PL group table is read in a handful of lines.
    assert result["hw_hot"] < result["software"] / 10
    # The engine filtered roughly the selective fraction.
    assert 0.15 < result["joinable"] / result["n_rows"] < 0.35
