"""Extension — energy per query across the access paths.

Table 3 gives the RME's power envelope (0.733 W static, 3.6 W dynamic);
combined with per-event memory energies this prices each access path in
joules as well as nanoseconds. The result refines the paper's story:

* the engine always moves *less DRAM energy* (only useful beats);
* a one-shot cold transformation can still cost more total energy than
  the direct scan — the fabric's dynamic power runs for the whole stream;
* once the projection is reused (hot), the RME wins time and energy both.
"""

from conftest import N_ROWS, run_once

from repro import QueryExecutor, RelationalMemorySystem, q4
from repro.bench import make_relation
from repro.bench.report import render_table
from repro.model import EnergyModel


def sweep(n_rows):
    table = make_relation(n_rows)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    executor = QueryExecutor(system)
    model = EnergyModel()
    rows = []

    direct = executor.run_direct(q4(), loaded)
    e_direct = model.from_system(system, direct.elapsed_ns)
    rows.append(["direct", direct.elapsed_ns, e_direct.dram_nj,
                 e_direct.pl_dynamic_nj, e_direct.total_uj])

    var = system.register_var(loaded, ["A1"])
    cold = executor.run_rme(q4(), var)
    e_cold = model.from_system(system, cold.elapsed_ns)
    rows.append(["RME cold", cold.elapsed_ns, e_cold.dram_nj,
                 e_cold.pl_dynamic_nj, e_cold.total_uj])

    hot = executor.run_rme(q4(), var)
    e_hot = model.from_system(system, hot.elapsed_ns)
    rows.append(["RME hot", hot.elapsed_ns, e_hot.dram_nj,
                 e_hot.pl_dynamic_nj, e_hot.total_uj])
    return rows


def bench_ext_energy(benchmark):
    rows = run_once(benchmark, sweep, n_rows=N_ROWS)
    print()
    print(render_table(
        ["path", "time ns", "DRAM nJ", "PL dyn nJ", "total uJ"], rows,
    ))

    by_path = {r[0]: r for r in rows}
    # The engine moves far less DRAM energy than the row scan.
    assert by_path["RME cold"][2] < by_path["direct"][2] / 2
    assert by_path["RME hot"][2] <= by_path["RME cold"][2]
    # Hot reuse wins total energy comfortably.
    assert by_path["RME hot"][4] < by_path["direct"][4] / 2
    # The cold transformation's PL dynamic power is the dominant surcharge.
    assert by_path["RME cold"][3] > by_path["direct"][3]
