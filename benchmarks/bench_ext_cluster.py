"""Extension — sharded cluster availability under node-crash storms.

The cluster tier (``repro.cluster``) shards tenants across N simulated
serving nodes behind a deadline-racing router with budgeted retries,
hedging, health-check failover and staleness-measured CPU degradation.
This benchmark replays the same Poisson arrival schedule under seeded
node-crash plans of growing intensity and asserts the acceptance
claims: failover-enabled routing yields strictly higher availability
than the no-failover baseline at every nonzero intensity, and every
answered request is byte-identical to the fault-free profiled value.

The machine-readable capacity plan — ``nodes -> max sustainable QPS at
the p99 SLO`` — lands in ``BENCH_cluster.json`` alongside the
availability sweep.
"""

import json
import pathlib

from conftest import N_ROWS, run_once

from repro.bench.report import render_table
from repro.cluster import ClusterSystem, capacity_plan
from repro.faults import FaultPlan, RecoveryPolicy
from repro.serve import OpenLoopWorkload, default_tenants, profile_workload

INTENSITIES = (0.0, 0.5, 1.0)
N_REQUESTS = 200
N_NODES = 3
SEED = 7

#: The no-failover baseline also forfeits the CPU row-scan replica, so
#: degradation cannot mask the availability the replicas are buying.
NO_FAILOVER_RECOVERY = RecoveryPolicy(cpu_fallback=False)


def _crash_plan(intensity, rate_qps):
    if intensity <= 0:
        return None
    return FaultPlan.node_poisson(
        duration_ns=1e9 * N_REQUESTS / rate_qps, n_nodes=N_NODES,
        rates_per_ms={"node_crash": 3.0 * intensity}, seed=SEED,
    )


def sweep_cluster(n_rows):
    tenants = default_tenants(n_tenants=3, n_rows=n_rows, seed=SEED)
    profile = profile_workload(tenants)
    rate = 0.6 * N_NODES * profile.saturation_rate_qps()
    reports = {}
    for intensity in INTENSITIES:
        for label in ("failover", "no-failover"):
            workload = OpenLoopWorkload(
                tenants, rate_qps=rate, n_requests=N_REQUESTS, seed=SEED
            )
            failover = label == "failover"
            cluster = ClusterSystem(
                profile, n_nodes=N_NODES,
                fault_plan=_crash_plan(intensity, rate),
                failover=failover, hedging=failover,
                recovery=None if failover else NO_FAILOVER_RECOVERY,
            )
            reports[(intensity, label)] = cluster.run(workload)
    # Capacity planning wants placement the sizes can balance: 8 tenants
    # divide evenly across 1/2/4 nodes under range placement, so the
    # ``nodes -> max QPS`` table measures scaling, not tenant skew.
    cap_tenants = default_tenants(
        n_tenants=8, n_rows=max(128, n_rows // 2), seed=SEED
    )
    cap_profile = profile_workload(cap_tenants)
    points = capacity_plan(
        cap_profile, node_counts=(1, 2, 4), seed=SEED, routing="range"
    )
    return profile, tenants, reports, points


def bench_ext_cluster(benchmark):
    profile, tenants, reports, capacity = run_once(
        benchmark, sweep_cluster, n_rows=max(256, N_ROWS // 4)
    )
    print()
    rows = [
        [
            intensity, label, f"{report.availability:.2%}",
            round(report.p99_ns), report.failed,
            report.failover_routes, report.degraded,
            report.health_downs, report.fault_events,
        ]
        for (intensity, label), report in sorted(reports.items())
    ]
    print(render_table(
        ["intensity", "routing", "avail", "p99 ns", "failed",
         "failovers", "degraded", "health downs", "faults"],
        rows,
    ))
    print(render_table(
        ["nodes", "max qps", "p99 ns", "avail"],
        [[p.nodes, round(p.max_qps), round(p.p99_ns),
          f"{p.availability:.0%}"] for p in capacity],
    ))

    golden = {(spec.name, template): profile.profile(spec.name, template).value
              for spec in tenants for template, _query in spec.templates}

    clean = reports[(0.0, "failover")]
    assert clean.availability == 1.0 and clean.fault_events == 0

    for intensity in INTENSITIES:
        routed = reports[(intensity, "failover")]
        bare = reports[(intensity, "no-failover")]
        # Both configurations replay the identical arrival schedule.
        assert routed.arrivals == bare.arrivals
        # Acceptance claim (a): under node crashes, replica failover
        # (plus hedging and CPU degradation) yields strictly higher
        # availability than pinning each shard to its primary.
        if intensity > 0.0:
            assert routed.fault_events > 0 and bare.fault_events > 0
            assert routed.availability > bare.availability
        # Acceptance claim (b): every answered request — engine-served,
        # replica-served or CPU-degraded — carries the byte-identical
        # fault-free golden answer. Failover changes *where* a query
        # runs, never *what* it returns.
        for report in (routed, bare):
            for record in report.records:
                if record.state in ("served", "degraded"):
                    assert record.value == golden[(record.tenant,
                                                   record.template)]

    # Acceptance claim (c): capacity scales — more nodes never sustain
    # less load at the p99 SLO, and every cluster size sustains some.
    assert all(p.max_qps > 0 for p in capacity)
    for smaller, larger in zip(capacity, capacity[1:]):
        assert larger.max_qps >= smaller.max_qps

    report = {
        "benchmark": "sharded cluster availability + capacity",
        "n_nodes": N_NODES,
        "n_requests": N_REQUESTS,
        "availability": {
            f"intensity={intensity:g}/{label}": {
                "availability": round(rep.availability, 4),
                "p99_ns": round(rep.p99_ns, 1),
                "failed": rep.failed,
                "degraded": rep.degraded,
                "failover_routes": rep.failover_routes,
                "fault_events": rep.fault_events,
                "staleness_max_ns": round(rep.staleness_max_ns, 1),
            }
            for (intensity, label), rep in sorted(reports.items())
        },
        "capacity": [p.as_dict() for p in capacity],
        "answers": "byte-identical under every fault plan",
    }
    out = pathlib.Path("BENCH_cluster.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
