"""Figure 10 — projection queries (Q2, Q3) vs. row size with 4 B columns.

As rows grow the projectivity falls, direct accesses pollute the caches
(and defeat the sequential prefetcher past one line per row), and the
RME's advantage grows — the paper reports up to 3.2x at 128-byte rows.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig10_projection_rowsize, render_figure


def bench_fig10_projection_rowsize(benchmark):
    fig = run_once(benchmark, fig10_projection_rowsize, n_rows=N_ROWS)
    print()
    print(render_figure(fig))

    for query in ("Q2", "Q3"):
        gains = [d / c for d, c in zip(fig.series[f"{query} Direct"],
                                       fig.series[f"{query} RME cold"])]
        assert gains == sorted(gains), f"{query} gain must grow with row size"
        assert 2.5 < gains[-1] < 4.5, (
            f"{query}: expected ~3.2x at 128B rows, got {gains[-1]:.2f}x"
        )
        # RME latency itself stays nearly constant: it reads only the group.
        cold = fig.series[f"{query} RME cold"]
        assert max(cold) < min(cold) * 1.25
