"""Figure 11 — aggregation queries (Q4, Q5, Q6) vs. column width.

The RME outperforms direct row accesses for all three aggregations since
it moves only useful data; the benefit varies with the query's projected
group (1, 2 or 3 columns).
"""

from conftest import N_ROWS, run_once

from repro.bench import fig11_agg_colsize, render_figure


def bench_fig11_agg_colsize(benchmark):
    fig = run_once(benchmark, fig11_agg_colsize, n_rows=N_ROWS)
    print()
    print(render_figure(fig))

    for query in ("Q4", "Q5", "Q6"):
        ratios = dict(zip(fig.xs, fig.ratio(f"{query} RME cold", f"{query} Direct")))
        for width in fig.xs:
            group_cols = {"Q4": 1, "Q5": 2, "Q6": 3}[query]
            if width * group_cols <= 16:
                assert ratios[width] < 1.0, (
                    f"{query} should win at width {width} "
                    f"(group {width * group_cols}B), got {ratios[width]:.2f}"
                )
        hot = fig.series[f"{query} RME hot"]
        direct = fig.series[f"{query} Direct"]
        assert all(h < d for h, d in zip(hot, direct))
