"""Extension — RME vs PIM vs CPU shootout (bank-level pushdown).

Sweeps the paper's Figure 6 axes — predicate selectivity against the
projected column-group width (projectivity = ``w/16`` of the row) — and
runs every cell through three engines: the direct row scan, a cold RME
column fetch, and the bank-level PIM pushdown engine. The driver asserts
the three answers byte-identical at every cell; this benchmark asserts
the *shape*: PIM wins where few rows survive the predicate (the bitmap
readout plus a handful of point gathers beats streaming the table) and
loses where the gather approaches a full-table copy (high selectivity,
wide groups).

Two further sweeps exercise the in-bank join and grouped-aggregation
paths: a dim⋈fact equi-join (CPU hash join vs per-bank partitioned
build/probe) over probe-side selectivity, and a grouped SUM (CPU vs RME
vs per-bank group folds) over selectivity. Answers are asserted
identical per cell in the drivers; the shape assertions here require a
real crossover for the join and a low-selectivity PIM win for both.

The machine-readable grids land in ``BENCH_pim.json`` (sections
``scan``/``join``/``group_by``). Set ``REPRO_PERF_QUICK=1`` to run the
drivers' CI-sized smoke grids instead.
"""

import json
import os
import pathlib

from conftest import N_ROWS, run_once

from repro.bench.extensions import (
    ext_pim_groupby_shootout,
    ext_pim_join_shootout,
    ext_pim_shootout,
)
from repro.bench.report import render_table

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")

_REPORT_PATH = pathlib.Path("BENCH_pim.json")


def _write_section(section, payload):
    """Merge one sweep's grid into ``BENCH_pim.json``."""
    report = {}
    if _REPORT_PATH.exists():
        report = json.loads(_REPORT_PATH.read_text())
        if "benchmark" in report and "scan" not in report:
            report = {"scan": report}  # migrate the pre-join layout
    report[section] = payload
    _REPORT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {_REPORT_PATH} [{section}]")


def sweep_shootout(n_rows):
    return ext_pim_shootout(n_rows=n_rows, smoke=QUICK)


def _cells(figure):
    """``{(selectivity, width): {engine: ns}}`` from the figure series."""
    grid = {}
    for label, ys in sorted(figure.series.items()):
        engine, width = label.split(" w=")
        for sel, ns in zip(figure.xs, ys):
            grid.setdefault((sel, int(width)), {})[engine] = ns
    return grid


def bench_ext_pim(benchmark):
    figure = run_once(benchmark, sweep_shootout, n_rows=N_ROWS)
    grid = _cells(figure)

    rows = [
        [sel, width, cell["CPU"], cell["RME"], cell["PIM"],
         min(cell, key=cell.get)]
        for (sel, width), cell in sorted(grid.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]
    print()
    print(render_table(
        ["selectivity", "width", "CPU ns", "RME ns", "PIM ns", "winner"],
        rows,
    ))

    pim_wins = [(sel, width) for (sel, width), cell in grid.items()
                if cell["PIM"] < cell["CPU"] and cell["PIM"] < cell["RME"]]
    pim_losses = [(sel, width) for (sel, width), cell in grid.items()
                  if cell["PIM"] > min(cell["CPU"], cell["RME"])]

    _write_section("scan", {
        "benchmark": "RME vs PIM vs CPU shootout",
        "mode": "quick" if QUICK else "full",
        "n_rows": N_ROWS if not QUICK else min(N_ROWS, 256),
        "x_label": figure.x_label,
        "xs": figure.xs,
        "series": {k: list(v) for k, v in sorted(figure.series.items())},
        "answers_byte_identical": True,  # asserted per cell by the driver
        "pim_wins": sorted(pim_wins),
        "pim_losses": sorted(pim_losses),
        "notes": figure.notes,
    })

    low_sel = min(figure.xs)
    high_sel = max(figure.xs)
    wide = max(w for _, w in grid)
    # PIM must win a low-selectivity region and lose the wide full-scan
    # corner — a real crossover, not a uniformly-dominant (or dominated)
    # engine.
    assert any(sel == low_sel for sel, _ in pim_wins), (
        f"PIM never wins at selectivity {low_sel}: {grid}"
    )
    assert (high_sel, wide) in pim_losses, (
        f"PIM should lose the (sel={high_sel}, w={wide}) corner: "
        f"{grid[(high_sel, wide)]}"
    )
    # At fixed width, PIM cost grows with selectivity (more gathers).
    for width in sorted({w for _, w in grid}):
        pim_costs = [grid[(sel, width)]["PIM"] for sel in figure.xs]
        assert pim_costs == sorted(pim_costs), (
            f"PIM cost not monotone in selectivity at w={width}: {pim_costs}"
        )


def sweep_join(n_fact):
    return ext_pim_join_shootout(n_fact=n_fact, smoke=QUICK)


def bench_ext_pim_join(benchmark):
    figure = run_once(benchmark, sweep_join, n_fact=2 * N_ROWS)
    cpu, pim = figure.series["CPU join"], figure.series["PIM join"]

    rows = [[sel, c, p, "PIM" if p < c else "CPU"]
            for sel, c, p in zip(figure.xs, cpu, pim)]
    print()
    print(render_table(
        ["probe selectivity", "CPU join ns", "PIM join ns", "winner"], rows,
    ))

    pim_wins = [sel for sel, c, p in zip(figure.xs, cpu, pim) if p < c]
    _write_section("join", {
        "benchmark": "CPU hash join vs in-bank PIM join",
        "mode": "quick" if QUICK else "full",
        "n_fact": 2 * N_ROWS if not QUICK else min(2 * N_ROWS, 512),
        "x_label": figure.x_label,
        "xs": figure.xs,
        "series": {k: list(v) for k, v in sorted(figure.series.items())},
        "answers_byte_identical": True,  # asserted per cell by the driver
        "pim_wins": pim_wins,
        "notes": figure.notes,
    })

    # A real crossover: PIM takes the low-selectivity cell, the CPU hash
    # join takes the full-probe cell, and PIM's cost grows with the
    # number of matched pairs it must ship and gather.
    assert min(figure.xs) in pim_wins, (
        f"PIM join never wins at selectivity {min(figure.xs)}: {rows}"
    )
    assert max(figure.xs) not in pim_wins, (
        f"PIM join should lose the full-probe cell: {rows}"
    )
    assert pim == sorted(pim), (
        f"PIM join cost not monotone in selectivity: {pim}"
    )


def sweep_groupby(n_rows):
    return ext_pim_groupby_shootout(n_rows=n_rows, smoke=QUICK)


def bench_ext_pim_groupby(benchmark):
    figure = run_once(benchmark, sweep_groupby, n_rows=2 * N_ROWS)
    cpu = figure.series["CPU group-by"]
    rme = figure.series["RME group-by"]
    pim = figure.series["PIM group-by"]

    rows = [[sel, c, r, p,
             min((("CPU", c), ("RME", r), ("PIM", p)), key=lambda kv: kv[1])[0]]
            for sel, c, r, p in zip(figure.xs, cpu, rme, pim)]
    print()
    print(render_table(
        ["selectivity", "CPU ns", "RME ns", "PIM ns", "winner"], rows,
    ))

    pim_wins = [sel for sel, c, r, p in zip(figure.xs, cpu, rme, pim)
                if p < c and p < r]
    _write_section("group_by", {
        "benchmark": "CPU vs RME vs PIM grouped SUM",
        "mode": "quick" if QUICK else "full",
        "n_rows": 2 * N_ROWS if not QUICK else min(2 * N_ROWS, 512),
        "x_label": figure.x_label,
        "xs": figure.xs,
        "series": {k: list(v) for k, v in sorted(figure.series.items())},
        "answers_byte_identical": True,  # asserted per cell by the driver
        "pim_wins": pim_wins,
        "notes": figure.notes,
    })

    # The group fold ships per-bank partial tables, not matched rows, so
    # PIM must win the low-selectivity cell outright.
    assert min(figure.xs) in pim_wins, (
        f"PIM group-by never wins at selectivity {min(figure.xs)}: {rows}"
    )
    # Readout scales with distinct groups, not matches: the PIM spread
    # across the sweep stays well under the CPU's full-scan cost.
    assert max(pim) - min(pim) < max(cpu), (
        f"PIM group-by spread exceeds a CPU scan: {pim} vs {cpu}"
    )
