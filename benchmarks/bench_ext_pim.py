"""Extension — RME vs PIM vs CPU shootout (bank-level pushdown).

Sweeps the paper's Figure 6 axes — predicate selectivity against the
projected column-group width (projectivity = ``w/16`` of the row) — and
runs every cell through three engines: the direct row scan, a cold RME
column fetch, and the bank-level PIM pushdown engine. The driver asserts
the three answers byte-identical at every cell; this benchmark asserts
the *shape*: PIM wins where few rows survive the predicate (the bitmap
readout plus a handful of point gathers beats streaming the table) and
loses where the gather approaches a full-table copy (high selectivity,
wide groups).

The machine-readable grid lands in ``BENCH_pim.json``. Set
``REPRO_PERF_QUICK=1`` to run the driver's CI-sized smoke grid instead.
"""

import json
import os
import pathlib

from conftest import N_ROWS, run_once

from repro.bench.extensions import ext_pim_shootout
from repro.bench.report import render_table

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")


def sweep_shootout(n_rows):
    return ext_pim_shootout(n_rows=n_rows, smoke=QUICK)


def _cells(figure):
    """``{(selectivity, width): {engine: ns}}`` from the figure series."""
    grid = {}
    for label, ys in sorted(figure.series.items()):
        engine, width = label.split(" w=")
        for sel, ns in zip(figure.xs, ys):
            grid.setdefault((sel, int(width)), {})[engine] = ns
    return grid


def bench_ext_pim(benchmark):
    figure = run_once(benchmark, sweep_shootout, n_rows=N_ROWS)
    grid = _cells(figure)

    rows = [
        [sel, width, cell["CPU"], cell["RME"], cell["PIM"],
         min(cell, key=cell.get)]
        for (sel, width), cell in sorted(grid.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]
    print()
    print(render_table(
        ["selectivity", "width", "CPU ns", "RME ns", "PIM ns", "winner"],
        rows,
    ))

    pim_wins = [(sel, width) for (sel, width), cell in grid.items()
                if cell["PIM"] < cell["CPU"] and cell["PIM"] < cell["RME"]]
    pim_losses = [(sel, width) for (sel, width), cell in grid.items()
                  if cell["PIM"] > min(cell["CPU"], cell["RME"])]

    report = {
        "benchmark": "RME vs PIM vs CPU shootout",
        "mode": "quick" if QUICK else "full",
        "n_rows": N_ROWS if not QUICK else min(N_ROWS, 256),
        "x_label": figure.x_label,
        "xs": figure.xs,
        "series": {k: list(v) for k, v in sorted(figure.series.items())},
        "answers_byte_identical": True,  # asserted per cell by the driver
        "pim_wins": sorted(pim_wins),
        "pim_losses": sorted(pim_losses),
        "notes": figure.notes,
    }
    out = pathlib.Path("BENCH_pim.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    low_sel = min(figure.xs)
    high_sel = max(figure.xs)
    wide = max(w for _, w in grid)
    # PIM must win a low-selectivity region and lose the wide full-scan
    # corner — a real crossover, not a uniformly-dominant (or dominated)
    # engine.
    assert any(sel == low_sel for sel, _ in pim_wins), (
        f"PIM never wins at selectivity {low_sel}: {grid}"
    )
    assert (high_sel, wide) in pim_losses, (
        f"PIM should lose the (sel={high_sel}, w={wide}) corner: "
        f"{grid[(high_sel, wide)]}"
    )
    # At fixed width, PIM cost grows with selectivity (more gathers).
    for width in sorted({w for _, w in grid}):
        pim_costs = [grid[(sel, width)]["PIM"] for sel in figure.xs]
        assert pim_costs == sorted(pim_costs), (
            f"PIM cost not monotone in selectivity at w={width}: {pim_costs}"
        )
