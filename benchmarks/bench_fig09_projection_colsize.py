"""Figure 9 — projection queries (Q2, Q3) vs. column width on 64 B rows.

The RME wins in cold and hot states except at 16-byte columns, where the
2-column group spans 32 bytes (half a cache line) and the PL-routing
overhead cancels the cache-efficiency gain.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig09_projection_colsize, render_figure


def bench_fig09_projection_colsize(benchmark):
    fig = run_once(benchmark, fig09_projection_colsize, n_rows=N_ROWS)
    print()
    print(render_figure(fig))

    for query in ("Q2", "Q3"):
        ratios = dict(zip(fig.xs, fig.ratio(f"{query} RME cold", f"{query} Direct")))
        for width in fig.xs:
            if width <= 8:
                assert ratios[width] < 1.0, (
                    f"{query} RME cold should win at width {width}"
                )
        assert 0.8 < ratios[16] < 1.35, (
            f"{query}: 16B columns should roughly cancel out, got {ratios[16]:.2f}"
        )
        hot = fig.series[f"{query} RME hot"]
        direct = fig.series[f"{query} Direct"]
        assert all(h < d for h, d in zip(hot, direct))


def bench_fig09_querying_time_grows_with_width(benchmark):
    fig = run_once(benchmark, fig09_projection_colsize, n_rows=N_ROWS // 2)
    cold = fig.series["Q3 RME cold"]
    assert cold[-1] > cold[0], "querying time must grow with the column size"
