"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark runs one figure driver exactly once (``pedantic`` with one
round — the drivers are deterministic simulations, not noisy wall-clock
measurements), prints the reproduced series as a table, and asserts the
paper's shape claims.

``REPRO_BENCH_ROWS`` scales every experiment's row count (default 2048;
the paper's projections are up to 2 MB — raise this to approach them at
the cost of simulation time).
"""

from __future__ import annotations

import os

#: Rows per experiment point.
N_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "2048"))


def run_once(benchmark, func, **kwargs):
    """Run a figure driver once under pytest-benchmark."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
