"""Figure 1 — query cost vs. projectivity (the paper's motivating figure).

Row-wise accesses have constant cost; columnar accesses grow with
projectivity; the ideal (and Relational Memory) is the minimum of the two.
"""

from conftest import run_once

from repro.bench import fig01_projectivity, render_figure


def bench_fig01_projectivity(benchmark):
    fig = run_once(benchmark, fig01_projectivity, n_points=20)
    print()
    print(render_figure(fig))

    rows = fig.series["row_store"]
    cols = fig.series["column_store"]
    assert len(set(rows)) == 1, "row-store cost must be flat"
    assert all(a <= b for a, b in zip(cols, cols[1:])), "columnar cost must rise"
    assert fig.series["ideal"] == [min(r, c) for r, c in zip(rows, cols)]
    # The crossover the paper draws: columns win at low projectivity,
    # rows win at (or near) 100%.
    assert cols[0] < rows[0] and cols[-1] > rows[-1]
