"""Figure 12 — aggregation queries (Q4, Q5, Q6) vs. row size.

The paper highlights Q6: through the RME its cost falls "as low as 65% of
the traditional row access" — and the advantage keeps growing with the
row size for all three queries.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig12_agg_rowsize, render_figure


def bench_fig12_agg_rowsize(benchmark):
    fig = run_once(benchmark, fig12_agg_rowsize, n_rows=N_ROWS)
    print()
    print(render_figure(fig))

    for query in ("Q4", "Q5", "Q6"):
        ratios = fig.ratio(f"{query} RME cold", f"{query} Direct")
        assert ratios == sorted(ratios, reverse=True), (
            f"{query}: RME advantage must grow with row size"
        )
        assert ratios[-1] < 0.65, f"{query} should reach <=65% at 128B rows"
    # Q6's 65% claim at the paper's default geometry (64-byte rows).
    at64 = dict(zip(fig.xs, fig.ratio("Q6 RME cold", "Q6 Direct")))
    assert at64[64] < 1.0
