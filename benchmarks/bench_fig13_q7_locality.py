"""Figure 13 — Q7 (standard deviation, two passes) exploits locality.

The paper reports ~15% improvement at the default geometry and a ~60%
latency drop at large row sizes: the second pass streams the packed
column out of the reorganization buffer while the direct route pays the
cache pollution twice.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig13_q7_locality, render_figure


def bench_fig13_q7_row_sweep(benchmark):
    fig = run_once(benchmark, fig13_q7_locality, n_rows=N_ROWS, sweep="row")
    print()
    print(render_figure(fig))

    ratios = dict(zip(fig.xs, fig.ratio("RME cold", "Direct")))
    assert ratios[64] < 1.0, "RME should win at the default geometry"
    assert ratios[128] < 0.45, "latency should drop ~60% at large rows"
    values = [ratios[x] for x in fig.xs]
    assert values[-1] == min(values)


def bench_fig13_q7_col_sweep(benchmark):
    fig = run_once(benchmark, fig13_q7_locality, n_rows=N_ROWS, sweep="col")
    print()
    print(render_figure(fig))

    ratios = fig.ratio("RME cold", "Direct")
    assert ratios[0] < 1.0
    hot = fig.series["RME hot"]
    direct = fig.series["Direct"]
    assert all(h < d for h, d in zip(hot, direct))
