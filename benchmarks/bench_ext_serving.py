"""Extension — concurrent query serving under port-scheduling policies.

The paper's prototype serves one ephemeral query at a time through a
single configuration port and leaves concurrency as future work. The
``repro.serve`` subsystem models that contention; this benchmark sweeps
arrival rate x scheduler policy over the same Poisson schedule and
asserts the headline claims: context switching recovers hot-buffer hits
under load, and a second configuration port strictly beats single-port
FCFS tail latency at saturation.
"""

from conftest import N_ROWS, run_once

from repro.bench.report import render_table
from repro.serve import (
    OpenLoopWorkload,
    ServingSystem,
    default_tenants,
    profile_workload,
)

POLICIES = ("fcfs", "ctx-switch", "multi-port")
LOAD_FACTORS = (0.5, 1.0, 1.5)


def sweep_serving(n_rows):
    tenants = default_tenants(n_tenants=3, n_rows=n_rows)
    profile = profile_workload(tenants)
    saturation = profile.saturation_rate_qps()
    reports = {}
    for factor in LOAD_FACTORS:
        workload = OpenLoopWorkload(
            tenants, rate_qps=factor * saturation, n_requests=300, seed=7
        )
        for policy in POLICIES:
            system = ServingSystem(profile, policy=policy, queue_depth=48)
            reports[(factor, policy)] = system.run(workload)
    return saturation, reports


def bench_ext_serving(benchmark):
    saturation, reports = run_once(
        benchmark, sweep_serving, n_rows=max(256, N_ROWS // 4)
    )
    print()
    print(f"single-port saturation: {saturation:,.0f} qps")
    rows = [
        [
            factor, policy, report.served, report.shed,
            round(report.p50_ns), round(report.p99_ns),
            f"{report.hot_rate:.0%}", report.context_switches,
        ]
        for (factor, policy), report in sorted(reports.items())
    ]
    print(render_table(
        ["load x", "policy", "served", "shed", "p50 ns", "p99 ns",
         "hot", "ctx sw"],
        rows,
    ))

    for factor in LOAD_FACTORS:
        fcfs = reports[(factor, "fcfs")]
        ctx = reports[(factor, "ctx-switch")]
        multi = reports[(factor, "multi-port")]
        # Every policy serves the same arrival schedule.
        assert fcfs.arrivals == ctx.arrivals == multi.arrivals
        # Correctness: nothing is silently dropped outside admission control.
        for report in (fcfs, ctx, multi):
            assert report.served + report.shed == report.arrivals

    # At and past saturation the second port strictly beats single-port
    # FCFS on tail latency (the acceptance claim), and context switching
    # batches same-descriptor work into a higher hot rate.
    for factor in (1.0, 1.5):
        fcfs = reports[(factor, "fcfs")]
        ctx = reports[(factor, "ctx-switch")]
        multi = reports[(factor, "multi-port")]
        assert multi.p99_ns < fcfs.p99_ns
        assert ctx.hot_rate > fcfs.hot_rate
        assert ctx.p99_ns < fcfs.p99_ns

    # Below saturation nothing sheds; well past it FCFS must shed first.
    for policy in POLICIES:
        assert reports[(0.5, policy)].shed == 0
    assert reports[(1.5, "fcfs")].shed >= reports[(1.5, "multi-port")].shed
