"""Figure 6 — normalized Q1 time across access paths and RME designs.

Paper claims reproduced here:
* cold BSL is ~16x slower than the direct row access;
* the PCK and MLP revisions progressively close the gap;
* cold MLP beats the direct route (~20% lower latency);
* hot MLP matches the columnar baseline ("no data transformation
  latency");
* the MLP benefit shrinks as the column width grows.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig06_q1_designs, render_figure


def bench_fig06_q1_designs(benchmark):
    fig = run_once(benchmark, fig06_q1_designs, n_rows=N_ROWS)
    print()
    print(render_figure(fig, normalized_to="Direct"))

    norm = fig.normalized("Direct")
    for i, width in enumerate(fig.xs):
        bsl = norm.series["BSL cold"][i]
        pck = norm.series["PCK cold"][i]
        mlp = norm.series["MLP cold"][i]
        assert mlp < pck < bsl, f"design progression broken at width {width}"
        assert 10 < bsl < 25, f"BSL cold should be ~16x direct, got {bsl:.1f}x"
        assert mlp < 1.0, f"MLP cold should beat direct at width {width}"
        hot = norm.series["MLP hot"][i]
        col = norm.series["Columnar"][i]
        assert hot < 0.45, "hot MLP must be far below direct"
        assert hot / col < 1.6, "hot MLP ~ columnar (same-latency claim)"
    # Hot benefit shrinks with width (fewer lines to skip).
    hots = norm.series["MLP hot"]
    assert hots[0] < hots[-1]
