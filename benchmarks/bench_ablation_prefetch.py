"""Ablation — the CPU stream prefetcher's role in Figures 7 and 10.

The sequential prefetcher is what keeps the direct route competitive on
line-sized rows and what makes the packed (columnar / RME-hot) scans
stream; its inability to follow multi-line strides is what makes wide
rows so expensive for the direct route (Figure 10's growing gap).
"""

from conftest import N_ROWS, run_once

from repro.bench import ExperimentRunner, make_relation
from repro.bench.report import render_table
from repro.bench.workloads import make_relation_for_row_size
from repro.config import ZCU102
from repro.query import q1
from repro.rme.designs import MLP


def sweep_prefetch(n_rows):
    results = []
    for degree in (0, 1, 2, 4, 8):
        platform = ZCU102.with_overrides(prefetch_degree=degree)
        runner = ExperimentRunner(platform=platform, designs=(MLP,))
        table = make_relation(n_rows)
        direct = runner.time_direct(table, q1()).elapsed_ns
        hot = runner.time_rme(table, q1(), MLP, hot=True).elapsed_ns
        results.append((degree, direct, hot))
    # Wide rows: prefetch cannot follow the 2-line stride at any degree.
    wide = make_relation_for_row_size(n_rows, 128, 4)
    wide_no = ExperimentRunner(
        platform=ZCU102.with_overrides(prefetch_degree=0), designs=(MLP,)
    ).time_direct(wide, q1()).elapsed_ns
    wide_yes = ExperimentRunner(designs=(MLP,)).time_direct(wide, q1()).elapsed_ns
    return results, wide_no, wide_yes


def bench_ablation_prefetch(benchmark):
    results, wide_no, wide_yes = run_once(
        benchmark, sweep_prefetch, n_rows=N_ROWS // 2
    )
    print()
    print(render_table(["degree", "direct ns", "RME hot ns"], results))
    print(f"128B rows, degree 0: {wide_no:,.0f} ns; degree 4: {wide_yes:,.0f} ns")

    by_degree = {deg: (direct, hot) for deg, direct, hot in results}
    # Prefetching pays on the sequential direct scan...
    assert by_degree[4][0] < by_degree[0][0] * 0.7
    # ...and on the packed ephemeral scan.
    assert by_degree[4][1] < by_degree[0][1]
    # Degrees beyond the MSHR budget stop helping much.
    assert by_degree[8][0] > by_degree[4][0] * 0.8
    # Wide rows defeat the stream prefetcher entirely: degree is irrelevant.
    assert abs(wide_no - wide_yes) < 0.1 * wide_no
