"""Extension — native non-contiguous column groups (the paper's future
work: "enable fetching multiple non-contiguous columns").

Compares three ways to serve Listing 2's num_fld1/num_fld3/num_fld4 group
of the 96-byte Listing 1 row:

* the prototype workaround: project the covering contiguous run
  (num_fld1..num_fld4, 32 bytes — 8 wasted bytes per row);
* the multi-run extension: project exactly the 24 useful bytes, paying
  one extra descriptor per row;
* direct row access.

Hot scans favour the exact group (less data over the PS-PL port); cold
fills favour the covering run (half the descriptor traffic) — the
trade-off a hardware implementation would face.
"""

from conftest import N_ROWS, run_once

from repro import Col, Query, QueryExecutor, RelationalMemorySystem
from repro.bench.report import render_table
from repro.bench.workloads import make_listing1_table

GROUP = ["num_fld1", "num_fld3", "num_fld4"]
COVERING = ["num_fld1", "num_fld2", "num_fld3", "num_fld4"]


def listing3_query() -> Query:
    return Query(
        name="listing3",
        sql="SELECT SUM(num_fld1 * num_fld4) FROM the_table WHERE num_fld3 > 10",
        select=(),
        aggregate="sum",
        agg_expr=Col("num_fld1") * Col("num_fld4"),
        predicate=Col("num_fld3") > 10,
    )


def compare(n_rows):
    query = listing3_query()
    results = {}
    for label, columns, gaps in (
        ("covering run (32B)", COVERING, False),
        ("multi-run (24B)", GROUP, True),
    ):
        table = make_listing1_table(n_rows)
        system = RelationalMemorySystem()
        loaded = system.load_table(table)
        var = system.register_var(loaded, columns, allow_noncontiguous=gaps)
        executor = QueryExecutor(system)
        cold = executor.run_rme(query, var)
        hot = executor.run_rme(query, var)
        results[label] = (var.width, cold.elapsed_ns, hot.elapsed_ns, cold.value)
    table = make_listing1_table(n_rows)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    direct = QueryExecutor(system).run_direct(query, loaded)
    results["direct rows (96B)"] = (96, direct.elapsed_ns, direct.elapsed_ns,
                                    direct.value)
    return results


def bench_ext_noncontiguous(benchmark):
    results = run_once(benchmark, compare, n_rows=N_ROWS)
    rows = [[label, width, cold, hot]
            for label, (width, cold, hot, _v) in results.items()]
    print()
    print(render_table(["path", "bytes/row", "cold ns", "hot ns"], rows))

    answers = {value for _w, _c, _h, value in results.values()}
    assert len(answers) == 1, "all paths must agree on the answer"
    covering = results["covering run (32B)"]
    multirun = results["multi-run (24B)"]
    direct = results["direct rows (96B)"]
    # Hot: the exact group moves fewer bytes over the PS-PL port.
    assert multirun[2] < covering[2]
    # Cold: two descriptors per row cost throughput.
    assert multirun[1] > covering[1]
    # Both beat the direct row scan once warm.
    assert multirun[2] < direct[1] and covering[2] < direct[1]
