"""Ablation — the BSL -> PCK -> MLP design axes, taken apart.

Two independent mechanisms separate the revisions (Section 5.2):

* the **packer register** (PCK), which batches reorganization-buffer
  writes into one wide write per packed line;
* **memory-level parallelism** (MLP), outstanding DRAM transactions that
  overlap the long PL->DRAM round trip.

This ablation sweeps the outstanding-transaction count with the packer on
and off, showing each knob's contribution to the cold fill time.
"""

from conftest import N_ROWS, run_once

from repro.bench import ExperimentRunner, make_relation
from repro.bench.report import render_table
from repro.query import q1
from repro.rme.designs import DesignParams


def sweep_designs(n_rows):
    table = make_relation(n_rows)
    runner = ExperimentRunner()
    rows = []
    times = {}
    for packer in (False, True):
        for outstanding in (1, 2, 4, 8, 16):
            design = DesignParams(
                name=f"{'pck' if packer else 'raw'}-{outstanding}",
                outstanding_txns=outstanding,
                packer=packer,
                serial_write=outstanding == 1,
            )
            cold = runner.time_rme(table, q1(), design, hot=False)
            times[(packer, outstanding)] = cold.elapsed_ns
            rows.append([design.name, outstanding, packer, cold.elapsed_ns])
    direct = runner.time_direct(table, q1()).elapsed_ns
    return rows, times, direct


def bench_ablation_designs(benchmark):
    rows, times, direct = run_once(benchmark, sweep_designs, n_rows=N_ROWS // 2)
    print()
    print(render_table(["design", "outstanding", "packer", "cold ns"], rows))
    print(f"direct baseline: {direct:,.0f} ns")

    # More outstanding transactions monotonically reduce the fill time.
    for packer in (False, True):
        series = [times[(packer, n)] for n in (1, 2, 4, 8, 16)]
        assert series == sorted(series, reverse=True)
    # The packer helps the serial design (it removes per-chunk write stalls).
    assert times[(True, 1)] < times[(False, 1)]
    # Only the full MLP configuration beats the direct route.
    assert times[(True, 16)] < direct
    assert times[(False, 1)] > 10 * direct
