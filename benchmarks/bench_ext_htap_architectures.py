"""Extension — "fractured mirrors without the mirrors", measured.

Three HTAP architectures ingest the same batch of rows and then answer
the same analytical scan:

* **fractured mirrors** — row + column copies, every write lands twice;
* **conversion pipeline** — row-format delta drained into a columnar main
  by a background job; analytics lag by the un-drained delta;
* **Relational Memory** — one row-store copy, ephemeral columnar access.

The comparison prices each architecture's total memory traffic for an
ingest-then-analyse cycle and reports the bookkeeping the paper's
argument rests on: write amplification, storage overhead, staleness.
"""

import random

from conftest import N_ROWS, run_once

from repro import QueryExecutor, RelationalMemorySystem, q4
from repro.baselines import DeltaConvertHTAP, FracturedMirrors
from repro.bench.report import render_table
from repro.bench.workloads import make_relation
from repro.memsys.cpu import ScanSegment
from repro.storage import uniform_schema


def build_rows(n_rows, seed=9):
    rng = random.Random(seed)
    return [[rng.randint(-1000, 1000) for _ in range(16)] for _ in range(n_rows)]


def ingest_time(n_rows, mirrored: bool) -> float:
    """Simulated time to ingest ``n_rows`` 64-byte rows.

    The row side is a sequential stream of stores; a mirrored column side
    additionally scatters 16 four-byte field writes per row across 16
    separate column arrays — the write-locality penalty of maintaining
    the second layout.
    """
    system = RelationalMemorySystem()
    rows_region = system.memmap.map("ingest_rows", 64 * n_rows + 64)
    system.hierarchy.add_backend(rows_region, system._dram_backend)
    col_regions = []
    if mirrored:
        for c in range(16):
            region = system.memmap.map(f"ingest_col{c}", 4 * n_rows + 64)
            system.hierarchy.add_backend(region, system._dram_backend)
            col_regions.append(region)

    def writer():
        for i in range(n_rows):
            yield from system.hierarchy.store(rows_region.base + 64 * i, 64)
            for region in col_regions:
                yield from system.hierarchy.store(region.base + 4 * i, 4)

    process = system.sim.process(writer())
    system.sim.run()
    del process
    return system.sim.now


def run_cycle(n_rows):
    data = build_rows(n_rows)
    schema = uniform_schema(16, 4)
    results = {}
    single_ingest = ingest_time(n_rows, mirrored=False)
    mirrored_ingest = ingest_time(n_rows, mirrored=True)

    # -- fractured mirrors ---------------------------------------------------
    mirrors = FracturedMirrors("fm", schema)
    for values in data:
        mirrors.insert(values)
    system = RelationalMemorySystem()
    loaded = system.load_table(mirrors.rows)
    columnar = system.load_column_group(mirrors.rows, ["A1"])
    scan_ns = QueryExecutor(system).run_columnar(q4(), loaded, columnar).elapsed_ns
    results["fractured mirrors"] = dict(
        scan_ns=scan_ns,
        ingest_ns=mirrored_ingest,
        amplification=mirrors.costs.write_amplification(schema.row_size),
        resident=mirrors.resident_bytes,
        stale=mirrors.stale_rows,
    )

    # -- conversion pipeline ---------------------------------------------------
    pipeline = DeltaConvertHTAP("cv", schema, batch_rows=max(1, n_rows // 8))
    for values in data:
        pipeline.insert(values)
    stale_before = pipeline.stale_rows
    pipeline.convert_all()
    system = RelationalMemorySystem()
    loaded = system.load_table(pipeline.delta)
    columnar = system.load_column_group(pipeline.delta, ["A1"])
    scan_ns = QueryExecutor(system).run_columnar(q4(), loaded, columnar).elapsed_ns
    # The conversion job's own memory traffic, priced as a stream.
    conv_region = system.memmap.map("conv", pipeline.conversion_scan_bytes(n_rows) + 64)
    system.hierarchy.add_backend(conv_region, system._dram_backend)
    conversion_ns = system.measure([
        ScanSegment(conv_region.base, pipeline.conversion_scan_bytes(n_rows) // 64,
                    64, 64)
    ])
    results["conversion pipeline"] = dict(
        scan_ns=scan_ns + conversion_ns,
        ingest_ns=single_ingest,
        amplification=pipeline.costs.write_amplification(schema.row_size),
        resident=pipeline.resident_bytes,
        stale=stale_before,
    )

    # -- relational memory -------------------------------------------------------
    table = make_relation(n_rows)  # plain row-store, written once
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    var = system.register_var(loaded, ["A1"])
    scan_ns = QueryExecutor(system).run_rme(q4(), var).elapsed_ns
    results["relational memory"] = dict(
        scan_ns=scan_ns,
        ingest_ns=single_ingest,
        amplification=1.0,
        resident=table.nbytes,
        stale=0,
    )
    return results


def bench_ext_htap_architectures(benchmark):
    results = run_once(benchmark, run_cycle, n_rows=N_ROWS)
    rows = [
        [name, round(r["ingest_ns"]), round(r["scan_ns"]),
         round(r["amplification"], 2), r["resident"], r["stale"]]
        for name, r in results.items()
    ]
    print()
    print(render_table(
        ["architecture", "ingest ns", "analytics ns (incl. upkeep)",
         "write amp", "resident B", "stale rows at query"],
        rows,
    ))

    fm = results["fractured mirrors"]
    cv = results["conversion pipeline"]
    rm = results["relational memory"]
    # Only Relational Memory writes once, stores once, and is always fresh.
    assert rm["amplification"] == 1.0 and rm["stale"] == 0
    assert fm["amplification"] >= 2.0
    assert cv["amplification"] >= 2.0
    assert fm["resident"] >= 2 * rm["resident"]
    assert cv["stale"] > 0
    # And its analytics (cold, transforming!) stay in the mirrors' league:
    # within ~2x of scanning a pre-built columnar copy, without the copy.
    assert rm["scan_ns"] < 2.5 * fm["scan_ns"] + cv["scan_ns"]
    # Maintaining the mirror makes every ingest slower (scattered column
    # writes on top of the row stream).
    assert fm["ingest_ns"] > 1.5 * rm["ingest_ns"]