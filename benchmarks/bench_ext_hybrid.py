"""Extension — hybrid execution strategies (Section 4).

"The query optimizer can decide to execute one query with indexes and
another query with columns, alternating between a row-at-a-time and
column-at-a-time execution strategy depending on what is the best fit."

This benchmark sweeps the predicate's selectivity and runs the same
aggregation through a B+-tree index probe, the direct row scan, and the
RME — showing the crossover the optimizer exploits, and checking that the
optimizer's choice matches the measured winner at the extremes.
"""

from conftest import N_ROWS, run_once

from repro import (
    AccessPath,
    Col,
    Query,
    QueryExecutor,
    RelationalMemorySystem,
    choose_access_path,
)
from repro.bench import make_relation
from repro.bench.report import render_table

# A1 values are uniform in [-1e6, 1e6]; these cuts set the selectivity.
CUTS = [(-999_000, 0.0005), (-990_000, 0.005), (-900_000, 0.05),
        (-500_000, 0.25), (500_000, 0.75)]


def query_for(cut):
    return Query(name=f"cut{cut}", sql=f"SELECT SUM(A2) FROM S WHERE A1 < {cut}",
                 select=(), aggregate="sum", agg_expr=Col("A2"),
                 predicate=Col("A1") < cut)


def sweep_selectivity(n_rows):
    table = make_relation(n_rows)
    system = RelationalMemorySystem()
    loaded = system.load_table(table)
    index = system.load_index(loaded, "A1")
    var = system.register_var(loaded, ["A1", "A2"])
    executor = QueryExecutor(system)
    rows = []
    for cut, _approx in CUTS:
        query = query_for(cut)
        via_index = executor.run_index(query, loaded, index)
        via_direct = executor.run_direct(query, loaded)
        system.warm_up(var)
        system.flush_caches()
        via_rme = executor.run_rme(query, var)
        assert via_index.value == via_direct.value == via_rme.value
        choice = choose_access_path(query, loaded,
                                    selectivity=via_index.selectivity,
                                    rme_hot=True, index=index.index)
        # The in-bank PIM fold may take the overall win for an aggregate;
        # the crossover this benchmark is about plays out among the paths
        # that stream rows (or index probes) to the CPU.
        classic = min(
            (p for p in choice.estimates_ns if p is not AccessPath.PIM),
            key=choice.estimates_ns.get,
        )
        rows.append([
            round(via_index.selectivity, 4),
            via_index.elapsed_ns,
            via_direct.elapsed_ns,
            via_rme.elapsed_ns,
            choice.best.value,
            classic.value,
        ])
    return rows


def bench_ext_hybrid(benchmark):
    rows = run_once(benchmark, sweep_selectivity, n_rows=N_ROWS)
    print()
    print(render_table(
        ["selectivity", "index ns", "direct ns", "RME hot ns", "optimizer",
         "non-PIM winner"],
        rows,
    ))

    most_selective = rows[0]
    least_selective = rows[-1]
    # The index wins only at the selective end.
    assert most_selective[1] < most_selective[2]
    assert most_selective[1] < most_selective[3]
    assert least_selective[1] > least_selective[3]
    # The optimizer alternates with selectivity.  PIM may take the
    # overall win (the aggregate folds in-bank), but among the CPU-side
    # paths the index/scan crossover still decides.
    assert most_selective[4] in (AccessPath.INDEX.value, AccessPath.PIM.value)
    assert most_selective[5] == AccessPath.INDEX.value
    assert least_selective[5] in (AccessPath.RME.value,
                                  AccessPath.DIRECT_ROW.value)
    # Index cost grows with selectivity (more fetches).
    index_costs = [r[1] for r in rows]
    assert index_costs == sorted(index_costs)
