"""Table 3 — post-implementation PL resource, timing and power report.

The estimator regenerates the structure of the paper's Vivado 2017.4
report for the MLP design on the ZCU102: BRAM deliberately maxed out
(~60%), logic below 3%, two DSP slices for the address generation,
timing met at 100 MHz with sub-nanosecond slack.
"""

import pytest

from conftest import run_once

from repro.bench import table3_resources
from repro.bench.report import render_table

PAPER_MLP = {
    "LUT (%)": 2.78,
    "FF (%)": 0.68,
    "BRAM (%)": 60.69,
    "DSP (%)": 0.08,
    "WNS (ns)": 0.818,
    "Static power (W)": 0.733,
    "Dynamic power (W)": 3.599,
}


def bench_table3_resources(benchmark):
    reports = run_once(benchmark, table3_resources)
    labels = [label for label, _ in reports["MLP"].rows()]
    rows = []
    for i, label in enumerate(labels):
        rows.append([label, PAPER_MLP[label]]
                    + [reports[name].rows()[i][1] for name in reports])
    print()
    print(render_table(["metric", "paper (MLP)"] + list(reports), rows))

    mlp = dict(reports["MLP"].rows())
    assert mlp["LUT (%)"] == pytest.approx(PAPER_MLP["LUT (%)"], abs=0.3)
    assert mlp["FF (%)"] == pytest.approx(PAPER_MLP["FF (%)"], abs=0.1)
    assert mlp["BRAM (%)"] == pytest.approx(PAPER_MLP["BRAM (%)"], abs=2.0)
    assert mlp["DSP (%)"] == pytest.approx(PAPER_MLP["DSP (%)"], abs=0.02)
    assert mlp["WNS (ns)"] == pytest.approx(PAPER_MLP["WNS (ns)"], abs=0.1)
    assert mlp["Static power (W)"] == pytest.approx(0.733, abs=0.01)
    assert mlp["Dynamic power (W)"] == pytest.approx(3.599, abs=0.2)
