"""Extension — HTAP isolation on a multi-core cluster.

The paper argues the RME "minimizes the waste of constrained CPU cache
estate [...] and lower[s] cache pollution". On a multi-core SoC that
pollution is *shared*: an analytical scan on one core sweeps the shared
L2 and hogs the DRAM bus, hurting a latency-sensitive transactional core
next to it.

This benchmark co-runs an OLTP core (random point reads over its working
set) with an analytics core executing the same column scan three ways —
not at all, as a direct row scan, and through the RME — and measures the
OLTP core's completion time. The RME keeps the analytical footprint to
the packed column, preserving most of the transactional core's cache and
bandwidth.
"""

import random

from conftest import N_ROWS, run_once

from repro import RelationalMemorySystem
from repro.bench import make_relation
from repro.bench.report import render_table
from repro.memsys.cpu import ScanSegment


def oltp_latency(analytics_mode: str, n_rows: int) -> float:
    system = RelationalMemorySystem(n_cores=2)
    oltp = system.load_table(make_relation(1024, seed=1, name="oltp"))
    olap = system.load_table(make_relation(2 * n_rows, seed=2, name="olap"))
    rng = random.Random(3)
    points = [(oltp.base_addr + rng.randrange(1024) * 64, 8) for _ in range(800)]
    system.measure_points(points[:400])  # warm the OLTP working set

    if analytics_mode == "direct":
        analytics = [ScanSegment(olap.base_addr, 2 * n_rows, 4, 64, 0.7)]
    elif analytics_mode == "rme":
        var = system.register_var(olap, ["A1"])
        analytics = var.scan_segment(0.7)
    else:
        analytics = []

    workloads = [points[400:]]
    if analytics:
        workloads.append(analytics)
    return system.measure_parallel(workloads)[0]


def sweep(n_rows):
    return {
        mode: oltp_latency(mode, n_rows)
        for mode in ("alone", "direct", "rme")
    }


def bench_ext_isolation(benchmark):
    times = run_once(benchmark, sweep, n_rows=N_ROWS)
    rows = [
        [mode, times[mode], f"+{(times[mode] / times['alone'] - 1) * 100:.0f}%"]
        for mode in ("alone", "direct", "rme")
    ]
    print()
    print(render_table(["analytics neighbour", "OLTP core ns", "slowdown"], rows))

    direct_slowdown = times["direct"] / times["alone"]
    rme_slowdown = times["rme"] / times["alone"]
    assert direct_slowdown > 1.2, "direct analytics should visibly interfere"
    assert rme_slowdown < direct_slowdown, "the RME must interfere less"
    # The RME neighbour costs at most a third of the direct neighbour's
    # added latency.
    assert (rme_slowdown - 1) < (direct_slowdown - 1) / 3
