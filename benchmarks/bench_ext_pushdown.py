"""Extension — selection & aggregation pushdown (the paper's groundwork).

"Our method [...] currently implements projection, and offers the
groundwork for implementing selection, group by, aggregation, and
supporting joins in hardware." This benchmark builds the first two on the
projection engine and measures what they buy, sweeping the selection's
selectivity:

* **software selection** — project A1+A2, CPU filters and sums (Q5-style);
* **hardware selection** — the PL comparator drops non-matching rows; the
  CPU scans only survivors;
* **hardware aggregation** — the PL also sums; one register line reaches
  the CPU.
"""

from conftest import N_ROWS, run_once

from repro import Col, Query, QueryExecutor, RelationalMemorySystem
from repro.bench import make_relation
from repro.bench.report import render_table

# A2 is uniform in [-1e6, 1e6]; cuts give ~5 %, ~50 %, ~95 % selectivity.
CUTS = (-900_000, 0, 900_000)


def query_for(cut):
    return Query(name=f"sum<{cut}", sql=f"SELECT SUM(A1) FROM S WHERE A2 < {cut}",
                 select=(), aggregate="sum", agg_expr=Col("A1"),
                 predicate=Col("A2") < cut)


def sweep(n_rows):
    table = make_relation(n_rows)
    rows = []
    for cut in CUTS:
        query = query_for(cut)
        system = RelationalMemorySystem()
        loaded = system.load_table(table)
        executor = QueryExecutor(system)

        var = system.register_var(loaded, ["A1", "A2"])
        system.warm_up(var)
        system.flush_caches()
        software = executor.run_rme(query, var)

        fvar = system.register_filtered_var(loaded, ["A1", "A2"], "A2", "<", cut)
        hw_cold = executor.run_rme_pushdown(query, fvar)
        hw_hot = executor.run_rme_pushdown(query, fvar)

        avar = system.register_hw_aggregate(loaded, "A1", "sum",
                                            predicate_column="A2", op="<",
                                            constant=cut)
        agg_cold = executor.run_rme_hw_aggregate(avar)
        agg_hot = executor.run_rme_hw_aggregate(avar)

        assert software.value == hw_cold.value == agg_cold.value
        rows.append([
            round(software.selectivity, 3),
            software.elapsed_ns,
            hw_cold.elapsed_ns, hw_hot.elapsed_ns,
            agg_cold.elapsed_ns, agg_hot.elapsed_ns,
        ])
    return rows


def bench_ext_pushdown(benchmark):
    rows = run_once(benchmark, sweep, n_rows=N_ROWS)
    print()
    print(render_table(
        ["selectivity", "sw-select hot", "hw-select cold", "hw-select hot",
         "hw-agg cold", "hw-agg hot"],
        rows,
    ))

    for selectivity, sw_hot, hw_cold, hw_hot, agg_cold, agg_hot in rows:
        # Hardware selection scans only survivors: hot time scales with
        # selectivity and beats the software-filtered hot scan.
        assert hw_hot < sw_hot
        # The aggregate register read is near-free once computed.
        assert agg_hot < 1_000
        # Cold runs stay fetch-bound: the DRAM work is the same.
        assert agg_cold > 10 * agg_hot
    hot_times = [r[3] for r in rows]
    assert hot_times == sorted(hot_times), "hot hw-select grows with selectivity"
