"""Wall-clock trajectory of the sharded multi-process dispatch layer.

Times the fig06 Q1 design sweep twice — single-process (``jobs=1``) and
sharded across worker processes (``jobs=N``, one per usable core, at
least 2) — and asserts the layer's two contracts:

* **bit-identity**: the sharded sweep's xs and every series are equal,
  float for float, to the single-process run (``repro.parallel`` places
  results by shard index and runs the same batch body in both modes);
* **speedup**: with 4 or more usable cores the sharded run must be at
  least 2x faster wall-clock. On smaller hosts (CI runners are often
  1-2 cores, where process spawn overhead dominates a ~seconds sweep)
  the ratio is recorded but not asserted.

The machine-readable report lands in ``BENCH_parallel.json``. Set
``REPRO_PERF_QUICK=1`` for small CI scales (identity still asserted).
"""

import json
import multiprocessing
import os
import pathlib
import time

from repro.bench.figures import fig06_q1_designs

QUICK = os.environ.get("REPRO_PERF_QUICK", "") not in ("", "0")

#: The acceptance floor, asserted only on hosts with enough cores for
#: the ratio to be meaningful.
MIN_SPEEDUP = 2.0
MIN_CORES_FOR_FLOOR = 4


def _sweep_kwargs():
    if QUICK:
        # Four points: stays above ParallelConfig.inline_below so the
        # quick mode still exercises the pool it is benchmarking.
        return dict(n_rows=512, widths=(1, 4, 8, 16))
    return dict(n_rows=2048)


def _timed_sweep(jobs):
    start = time.perf_counter()
    figure = fig06_q1_designs(jobs=jobs, **_sweep_kwargs())
    return time.perf_counter() - start, figure


def bench_parallel_fig06(benchmark):
    cores = multiprocessing.cpu_count()
    jobs = max(2, min(cores, 8))

    single_s, single = benchmark.pedantic(
        _timed_sweep, args=(1,), rounds=1, iterations=1
    )

    report = {
        "benchmark": "sharded dispatch wall-clock",
        "mode": "quick" if QUICK else "full",
        "cores": cores,
        "jobs": jobs,
        "single_process_s": round(single_s, 4),
        "floor_asserted": cores >= MIN_CORES_FOR_FLOOR,
    }
    out = pathlib.Path("BENCH_parallel.json")

    if cores < 2:
        # A 1-core host has no parallelism to measure: timing the
        # sharded sweep would benchmark dispatch overhead, not speedup.
        # The bit-identity contract still holds on any host (the
        # break-even probe routes jobs=N inline here), so assert that
        # with an untimed run and record why the ratio is absent.
        sharded = fig06_q1_designs(jobs=jobs, **_sweep_kwargs())
        identical = (single.xs == sharded.xs
                     and single.series == sharded.series)
        report.update({
            "sharded_s": None,
            "speedup": None,
            "identical": identical,
            "skip_reason": (
                f"host has {cores} usable core(s); the sharded timing "
                "comparison needs at least 2"
            ),
        })
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print()
        print(f"fig06 sweep: jobs=1 {single_s:.2f}s; sharded comparison "
              f"skipped ({cores} core host), identity checked")
        print(f"wrote {out}")
        assert identical, \
            "sharded fig06 diverged from the single-process sweep"
        return

    sharded_s, sharded = _timed_sweep(jobs)
    identical = (single.xs == sharded.xs and single.series == sharded.series)
    speedup = single_s / sharded_s if sharded_s else float("inf")

    report.update({
        "sharded_s": round(sharded_s, 4),
        "speedup": round(speedup, 3),
        "identical": identical,
    })
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print()
    print(f"fig06 sweep: jobs=1 {single_s:.2f}s, jobs={jobs} {sharded_s:.2f}s "
          f"({speedup:.2f}x on {cores} cores)")
    print(f"wrote {out}")

    assert identical, "sharded fig06 diverged from the single-process sweep"
    if cores >= MIN_CORES_FOR_FLOOR:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP:.1f}x floor on a {cores}-core host"
        )
