"""Extension — serving availability under injected hardware faults.

The fault-injection subsystem (``repro.faults``) strikes requests with a
seeded per-attempt fault probability; the recovery stack answers with
retries, per-tenant circuit breakers and a CPU row-scan fallback. This
benchmark sweeps fault rate x recovery policy over the same Poisson
arrival schedule and asserts the acceptance claims: recovery yields
strictly higher availability than no-recovery at every nonzero fault
rate, and every successfully served answer is byte-identical to the
fault-free profile value.
"""

from conftest import N_ROWS, run_once

from repro.bench.report import render_table
from repro.faults import DEFAULT_RECOVERY, NO_RECOVERY
from repro.serve import (
    OpenLoopWorkload,
    ServingSystem,
    default_tenants,
    profile_workload,
)

FAULT_RATES = (0.0, 0.05, 0.15, 0.3)
POLICIES = (("recovery", DEFAULT_RECOVERY), ("no-recovery", NO_RECOVERY))


def sweep_faults(n_rows):
    tenants = default_tenants(n_tenants=2, n_rows=n_rows)
    profile = profile_workload(tenants)
    rate = 0.5 * profile.saturation_rate_qps()
    reports = {}
    for fault_rate in FAULT_RATES:
        workload = OpenLoopWorkload(
            tenants, rate_qps=rate, n_requests=250, seed=7
        )
        for label, recovery in POLICIES:
            system = ServingSystem(
                profile, fault_rate=fault_rate, recovery=recovery
            )
            reports[(fault_rate, label)] = system.run(workload)
    return profile, reports


def bench_ext_faults(benchmark):
    profile, reports = run_once(
        benchmark, sweep_faults, n_rows=max(256, N_ROWS // 4)
    )
    print()
    rows = [
        [
            fault_rate, label, f"{report.availability:.2%}",
            round(report.p99_ns), f"{report.fallback_ratio:.0%}",
            report.failed, report.retries_total, report.breaker_opens,
        ]
        for (fault_rate, label), report in sorted(reports.items())
    ]
    print(render_table(
        ["fault rate", "policy", "avail", "p99 ns", "fallback",
         "failed", "retries", "brk opens"],
        rows,
    ))

    clean = reports[(0.0, "recovery")]
    assert clean.availability == 1.0 and clean.fault_events == 0

    for fault_rate in FAULT_RATES:
        recovered = reports[(fault_rate, "recovery")]
        bare = reports[(fault_rate, "no-recovery")]
        # Both policies replay the identical arrival schedule.
        assert recovered.arrivals == bare.arrivals
        # Acceptance claim (a): wherever faults actually struck, the
        # circuit-breaker + retry + fallback stack yields strictly
        # higher availability than serving with recovery disabled.
        if fault_rate > 0.0:
            assert recovered.fault_events > 0 and bare.fault_events > 0
            assert recovered.availability > bare.availability
        # Acceptance claim (b): every successfully served answer under
        # faults is byte-identical to the fault-free profiled value —
        # recovery and degraded fallback never invent results.
        for report in (recovered, bare):
            for record in report.records:
                if record.shed or record.failed:
                    continue
                golden = profile.profile(record.tenant, record.template).value
                assert record.value == golden

    # Tail-latency degradation is the price of availability: degraded
    # requests pay the CPU re-scan, so the recovery p99 grows with the
    # fault rate while availability stays pinned above no-recovery.
    assert (reports[(0.3, "recovery")].p99_ns
            >= reports[(0.0, "recovery")].p99_ns)
