"""Extension — the on-chip capacity cliff (Section 6.2's avoided regime).

The paper constrains every experiment so the extracted columns fit the
2 MB reorganization buffer, noting that larger data needs a costly
periodic re-initialisation. The windowed mode implements that regime;
this benchmark maps the cliff: query time vs. buffer capacity for a fixed
projection, against the direct-access baseline that has no cliff.
"""

from conftest import N_ROWS, run_once

from repro import RelationalMemorySystem, QueryExecutor, q4
from repro.bench import make_relation
from repro.bench.report import render_table


def sweep_capacity(n_rows):
    table = make_relation(n_rows)
    projected = 4 * n_rows
    rows = []
    baseline = None
    for capacity in (projected // 8, projected // 4, projected // 2, projected):
        system = RelationalMemorySystem(buffer_capacity=max(64, capacity))
        loaded = system.load_table(table)
        var = system.register_var(loaded, ["A1"],
                                  windowed=capacity < projected)
        result = QueryExecutor(system).run_rme(q4(), var)
        windows = system.rme.n_windows
        rows.append([capacity, windows, result.elapsed_ns])
        if capacity == projected:
            baseline = result.elapsed_ns
    direct_system = RelationalMemorySystem()
    loaded = direct_system.load_table(make_relation(n_rows, seed=1))
    direct = QueryExecutor(direct_system).run_direct(q4(), loaded).elapsed_ns
    return rows, baseline, direct


def bench_ext_capacity_cliff(benchmark):
    rows, fits, direct = run_once(benchmark, sweep_capacity, n_rows=N_ROWS)
    print()
    print(render_table(["buffer B", "windows", "RME cold ns"], rows))
    print(f"direct baseline: {direct:,.0f} ns")

    times = [t for _cap, _w, t in rows]
    # Smaller buffers mean more windows and more re-initialisation cost.
    assert times == sorted(times, reverse=True)
    # With the projection resident, the engine beats the direct route...
    assert fits < direct
    # ...and the smallest buffer pays enough refills to lose the edge.
    assert times[0] > fits * 1.5
