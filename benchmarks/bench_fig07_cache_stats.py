"""Figure 7 — L1/L2 cache requests and misses during Q1.

The RME packs only useful bytes into cache lines, so both L1 and L2
misses collapse (~16x fewer at 4-byte columns in 64-byte rows) while the
demand request count stays equal (the query loads the same elements).
"""

from conftest import N_ROWS, run_once

from repro.bench import fig07_cache_stats, render_figure


def bench_fig07_cache_stats(benchmark):
    fig = run_once(benchmark, fig07_cache_stats, n_rows=max(N_ROWS, 2048))
    print()
    print(render_figure(fig))

    direct = dict(zip(fig.xs, fig.series["Direct"]))
    rme = dict(zip(fig.xs, fig.series["RME (MLP)"]))
    assert direct["L1 requests"] == rme["L1 requests"]
    assert rme["L1 misses"] * 8 < direct["L1 misses"]
    assert rme["L2 misses"] * 8 < direct["L2 misses"]
    assert rme["L2 requests"] >= rme["L2 misses"]
