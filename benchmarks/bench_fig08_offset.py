"""Figure 8 — the column-offset sweep (sum over a 4-byte column).

Offsets 0..60 of a 64-byte row. Cold RME runs spike exactly where the
4 target bytes straddle a 16-byte bus beat — offsets 13-15, 29-31 and
45-47 — because the Requestor emits burst-length-2 descriptors (Eq. 3).
Direct accesses and hot RME runs are flat.
"""

from conftest import N_ROWS, run_once

from repro.bench import fig08_offset_sweep, render_figure

SPIKES = [13, 14, 15, 29, 30, 31, 45, 46, 47]


def bench_fig08_offset(benchmark):
    n_rows = max(128, N_ROWS // 4)  # 61 offsets x 7 series: keep points lean
    fig = run_once(benchmark, fig08_offset_sweep, n_rows=n_rows)
    print()
    print(render_figure(fig))

    for series_name in ("BSL cold", "PCK cold", "MLP cold"):
        cold = dict(zip(fig.xs, fig.series[series_name]))
        flat = [cold[o] for o in fig.xs if o % 16 <= 12]
        base = min(flat)
        assert max(flat) < base * 1.05, f"{series_name} not flat off-spike"
        for spike in SPIKES:
            assert cold[spike] > base * 1.01, (
                f"{series_name} missing spike at offset {spike}"
            )
    direct = fig.series["Direct"]
    assert max(direct) < min(direct) * 1.05, "direct access must be offset-blind"
    for series_name in ("BSL hot", "PCK hot", "MLP hot"):
        hot = fig.series[series_name]
        assert max(hot) < min(hot) * 1.05, f"{series_name} must be offset-blind"
