"""Ablation — DRAM structure awareness (banks and row-buffer locality).

The RME's requestor walks rows in address order, which keeps its one-beat
reads inside open DRAM rows; its MLP revision additionally spreads
outstanding transactions across banks. This ablation quantifies both:
fewer banks serialize the fetch pipeline, and a tiny row buffer destroys
the open-page locality every path relies on.
"""

import dataclasses

from conftest import N_ROWS, run_once

from repro.bench import ExperimentRunner, make_relation
from repro.bench.report import render_table
from repro.config import ZCU102
from repro.query import q1
from repro.rme.designs import MLP


def sweep_dram(n_rows):
    table = make_relation(n_rows)
    bank_rows = []
    for n_banks in (1, 2, 4, 8):
        dram = dataclasses.replace(ZCU102.dram, n_banks=n_banks)
        runner = ExperimentRunner(
            platform=ZCU102.with_overrides(dram=dram), designs=(MLP,)
        )
        cold = runner.time_rme(table, q1(), MLP, hot=False).elapsed_ns
        bank_rows.append((n_banks, cold))

    page_rows = []
    for row_buffer in (128, 512, 2048):
        dram = dataclasses.replace(ZCU102.dram, row_buffer_bytes=row_buffer)
        runner = ExperimentRunner(
            platform=ZCU102.with_overrides(dram=dram), designs=(MLP,)
        )
        direct = runner.time_direct(table, q1()).elapsed_ns
        cold = runner.time_rme(table, q1(), MLP, hot=False).elapsed_ns
        page_rows.append((row_buffer, direct, cold))
    return bank_rows, page_rows


def bench_ablation_dram(benchmark):
    bank_rows, page_rows = run_once(benchmark, sweep_dram, n_rows=N_ROWS // 2)
    print()
    print(render_table(["banks", "MLP cold ns"], bank_rows))
    print(render_table(["row buffer B", "direct ns", "MLP cold ns"], page_rows))

    cold_by_banks = dict(bank_rows)
    # Bank-level parallelism helps the 16-outstanding fetch pipeline.
    assert cold_by_banks[8] <= cold_by_banks[1]
    # Small row buffers increase row misses and never help.
    direct_by_page = {p: d for p, d, _ in page_rows}
    assert direct_by_page[2048] <= direct_by_page[128]
